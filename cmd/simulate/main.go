// Command simulate runs the executable longest-chain protocol against a
// chosen adversary and reports realized consistency metrics, comparing the
// margin-optimal attacker's empirical violation rate with the exact
// dynamic-program prediction (experiment E7).
//
// Usage:
//
//	simulate -strategy margin -alpha 0.3 -ph 0.2 -s 5 -k 60 -runs 400
//	simulate -strategy private -alpha 0.3 -ph 0.2 -s 5 -k 60 -runs 400
//	simulate -strategy null -alpha 0.3 -ph 0.2 -k 60
//
// The independent executions are fanned out over a worker pool (-workers,
// 0 = all CPUs). Run r always uses seed base+r, so the empirical rate is
// identical at every pool size.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"multihonest/internal/chainsim"
	"multihonest/internal/charstring"
	"multihonest/internal/leader"
	"multihonest/internal/runner"
	"multihonest/internal/settlement"
	"multihonest/internal/stats"
)

func main() {
	log.SetFlags(0)
	strategy := flag.String("strategy", "margin", "adversary: null, private, margin")
	alpha := flag.Float64("alpha", 0.30, "adversarial slot probability")
	ph := flag.Float64("ph", 0.20, "uniquely honest slot probability")
	s := flag.Int("s", 5, "slot under attack")
	k := flag.Int("k", 60, "settlement horizon")
	runs := flag.Int("runs", 400, "independent protocol executions")
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "worker-pool size (0 = all CPUs)")
	flag.Parse()

	switch *strategy {
	case "null", "private", "margin":
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	if *runs < 1 {
		log.Fatalf("-runs %d must be ≥ 1", *runs)
	}
	p, err := charstring.ParamsFromAlpha(*alpha, *ph)
	if err != nil {
		log.Fatal(err)
	}
	horizon := *s - 1 + *k

	// oneRun executes protocol run r end to end and reports whether the
	// adversary presented a settlement violation of slot s.
	oneRun := func(run int) (bool, error) {
		rng := rand.New(rand.NewSource(*seed + int64(run)))
		sched := leader.BernoulliSchedule(p, horizon, rng)
		var strat chainsim.Strategy
		rule := chainsim.AdversarialTies
		switch *strategy {
		case "null":
			strat, rule = chainsim.NullStrategy{}, chainsim.ConsistentTies
		case "private":
			strat = &chainsim.PrivateChainStrategy{Target: *s}
		case "margin":
			strat = chainsim.NewMarginStrategy()
		}
		sim, err := chainsim.NewSim(chainsim.Config{Schedule: sched, Rule: rule, Strategy: strat, Seed: *seed + int64(run)})
		if err != nil {
			return false, err
		}
		if err := sim.Run(nil); err != nil {
			return false, err
		}
		switch st := strat.(type) {
		case *chainsim.MarginStrategy:
			if err := st.Err(); err != nil {
				return false, err
			}
			return st.ViolationPresentable(sim, *s)
		case *chainsim.PrivateChainStrategy:
			return st.Succeeded(sim), nil
		default:
			return sim.SettlementViolated(*s), nil
		}
	}

	violated := make([]bool, *runs)
	if err := runner.ForEach(*workers, *runs, func(run int) error {
		ok, err := oneRun(run)
		violated[run] = ok
		return err
	}); err != nil {
		log.Fatal(err)
	}
	violations := 0
	for _, v := range violated {
		if v {
			violations++
		}
	}

	lo, hi := stats.Wilson(violations, *runs)
	fmt.Printf("strategy=%s α=%.2f ph=%.2f s=%d k=%d runs=%d\n", *strategy, *alpha, *ph, *s, *k, *runs)
	fmt.Printf("empirical settlement-violation rate: %.4f [%.4f, %.4f] (%d/%d)\n",
		float64(violations)/float64(*runs), lo, hi, violations, *runs)
	comp := settlement.New(p)
	curve, err := comp.ViolationCurveFinitePrefix(*s-1, *k)
	if err != nil {
		log.Fatal(err)
	}
	stationary, err := comp.ViolationProbability(*k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimal-adversary prediction (finite prefix |x|=%d): %.4f\n", *s-1, curve[*k-1])
	fmt.Printf("stationary |x|→∞ prediction (Table 1 DP):                %.4f\n", stationary)
	switch *strategy {
	case "margin":
		fmt.Println("(the margin attacker should match the prediction within sampling error)")
	case "private":
		fmt.Println("(the private-chain baseline should fall below the prediction)")
	case "null":
		fmt.Println("(the null adversary never attacks; rate should be 0)")
	}
}
