// Command simulate runs the executable longest-chain protocol against a
// chosen adversary and reports realized consistency metrics, comparing the
// margin-optimal attacker's empirical violation rate with the exact
// dynamic-program prediction (experiment E7).
//
// Usage:
//
//	simulate -strategy margin -alpha 0.3 -ph 0.2 -s 5 -k 60 -runs 400
//	simulate -strategy private -alpha 0.3 -ph 0.2 -s 5 -k 60 -runs 400
//	simulate -strategy null -alpha 0.3 -ph 0.2 -k 60
//
// The independent executions are fanned out over a worker pool (-workers,
// 0 = all CPUs). Run r always uses seed base+r, so the empirical rate is
// identical at every pool size. -json emits one machine-readable document
// (parameters, empirical rate with Wilson interval, DP predictions,
// throughput), mirroring cmd/settle and cmd/table1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"multihonest/internal/chainsim"
	"multihonest/internal/charstring"
	"multihonest/internal/leader"
	"multihonest/internal/runner"
	"multihonest/internal/settlement"
	"multihonest/internal/stats"
)

// jsonOutput is the -json document.
type jsonOutput struct {
	Strategy   string  `json:"strategy"`
	Alpha      float64 `json:"alpha"`
	Ph         float64 `json:"ph"`
	S          int     `json:"s"`
	K          int     `json:"k"`
	Runs       int     `json:"runs"`
	Seed       int64   `json:"seed"`
	Workers    int     `json:"workers"`
	Violations int     `json:"violations"`
	Empirical  float64 `json:"empirical"`
	Lo         float64 `json:"lo"`
	Hi         float64 `json:"hi"`

	ExactFinitePrefix float64 `json:"exact_finite_prefix"`
	ExactStationary   float64 `json:"exact_stationary"`

	RunsPerSec float64 `json:"runs_per_sec"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

func main() {
	log.SetFlags(0)
	strategy := flag.String("strategy", "margin", "adversary: null, private, margin")
	alpha := flag.Float64("alpha", 0.30, "adversarial slot probability")
	ph := flag.Float64("ph", 0.20, "uniquely honest slot probability")
	s := flag.Int("s", 5, "slot under attack")
	k := flag.Int("k", 60, "settlement horizon")
	runs := flag.Int("runs", 400, "independent protocol executions")
	seed := flag.Int64("seed", 1, "base seed")
	workers := flag.Int("workers", 0, "worker-pool size (0 = all CPUs)")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON document instead of text")
	flag.Parse()

	switch *strategy {
	case "null", "private", "margin":
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	if *runs < 1 {
		log.Fatalf("-runs %d must be ≥ 1", *runs)
	}
	p, err := charstring.ParamsFromAlpha(*alpha, *ph)
	if err != nil {
		log.Fatal(err)
	}
	horizon := *s - 1 + *k

	// oneRun executes protocol run r end to end and reports whether the
	// adversary presented a settlement violation of slot s.
	oneRun := func(run int) (bool, error) {
		rng := rand.New(rand.NewSource(*seed + int64(run)))
		sched := leader.BernoulliSchedule(p, horizon, rng)
		var strat chainsim.Strategy
		rule := chainsim.AdversarialTies
		switch *strategy {
		case "null":
			strat, rule = chainsim.NullStrategy{}, chainsim.ConsistentTies
		case "private":
			strat = &chainsim.PrivateChainStrategy{Target: *s}
		case "margin":
			strat = chainsim.NewMarginStrategy()
		}
		sim, err := chainsim.NewSim(chainsim.Config{Schedule: sched, Rule: rule, Strategy: strat, Seed: *seed + int64(run)})
		if err != nil {
			return false, err
		}
		if err := sim.Run(nil); err != nil {
			return false, err
		}
		switch st := strat.(type) {
		case *chainsim.MarginStrategy:
			if err := st.Err(); err != nil {
				return false, err
			}
			return st.ViolationPresentable(sim, *s)
		case *chainsim.PrivateChainStrategy:
			return st.Succeeded(sim), nil
		default:
			return sim.SettlementViolated(*s), nil
		}
	}

	start := time.Now()
	violated := make([]bool, *runs)
	if err := runner.ForEach(*workers, *runs, func(run int) error {
		ok, err := oneRun(run)
		violated[run] = ok
		return err
	}); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	violations := 0
	for _, v := range violated {
		if v {
			violations++
		}
	}
	runsPerSec := 0.0
	if elapsed > 0 {
		runsPerSec = float64(*runs) / elapsed.Seconds()
	}

	lo, hi := stats.Wilson(violations, *runs)
	comp := settlement.New(p)
	curve, err := comp.ViolationCurveFinitePrefix(*s-1, *k)
	if err != nil {
		log.Fatal(err)
	}
	stationary, err := comp.ViolationProbability(*k)
	if err != nil {
		log.Fatal(err)
	}

	if *asJSON {
		out := jsonOutput{
			Strategy: *strategy, Alpha: *alpha, Ph: *ph, S: *s, K: *k,
			Runs: *runs, Seed: *seed, Workers: *workers,
			Violations: violations, Empirical: float64(violations) / float64(*runs), Lo: lo, Hi: hi,
			ExactFinitePrefix: curve[*k-1], ExactStationary: stationary,
			RunsPerSec: runsPerSec, ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("strategy=%s α=%.2f ph=%.2f s=%d k=%d runs=%d\n", *strategy, *alpha, *ph, *s, *k, *runs)
	fmt.Printf("empirical settlement-violation rate: %.4f [%.4f, %.4f] (%d/%d)\n",
		float64(violations)/float64(*runs), lo, hi, violations, *runs)
	fmt.Printf("throughput: %.3g runs/sec (%d runs in %.1f ms)\n", runsPerSec, *runs, float64(elapsed.Microseconds())/1e3)
	fmt.Printf("exact optimal-adversary prediction (finite prefix |x|=%d): %.4f\n", *s-1, curve[*k-1])
	fmt.Printf("stationary |x|→∞ prediction (Table 1 DP):                %.4f\n", stationary)
	switch *strategy {
	case "margin":
		fmt.Println("(the margin attacker should match the prediction within sampling error)")
	case "private":
		fmt.Println("(the private-chain baseline should fall below the prediction)")
	case "null":
		fmt.Println("(the null adversary never attacks; rate should be 0)")
	}
}
