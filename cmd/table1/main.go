// Command table1 regenerates Table 1 of the paper: exact probabilities of
// k-settlement violations for i.i.d. characteristic symbols, computed by
// the Section 6.6 dynamic program over the joint (reach, relative margin)
// chain with the |x| → ∞ initial law, swept on the banded lattice engine.
//
// Usage:
//
//	table1 [-kmax 500] [-quick] [-workers 0] [-tau 0] [-json]
//
// -quick restricts to k ≤ 200 and three α columns for a fast smoke run.
// -tau > 0 prunes negligible band-edge mass and reports certified brackets
// (the printed table shows the lower ends; -json carries both ends).
// -json emits machine-readable cells and timings on stdout instead of the
// formatted table. The independent (α, fraction) blocks are swept on a
// worker pool; -workers 0 (the default) uses every CPU and -workers 1 is
// the serial path. The emitted table is identical at any pool size.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"multihonest/internal/settlement"
)

// jsonCell is one Table 1 entry in the -json output.
type jsonCell struct {
	HonestFraction float64  `json:"honest_fraction"`
	Alpha          float64  `json:"alpha"`
	K              int      `json:"k"`
	P              float64  `json:"p"`
	Upper          *float64 `json:"upper,omitempty"` // certified upper end when τ > 0
}

// jsonOutput is the -json document.
type jsonOutput struct {
	Alphas      []float64  `json:"alphas"`
	Fractions   []float64  `json:"fractions"`
	Horizons    []int      `json:"horizons"`
	Tau         float64    `json:"tau"`
	Workers     int        `json:"workers"`
	ElapsedMS   float64    `json:"elapsed_ms"`
	CellsPerSec float64    `json:"cells_per_sec"`
	Cells       []jsonCell `json:"cells"`
}

func main() {
	log.SetFlags(0)
	kmax := flag.Int("kmax", 500, "largest settlement horizon k")
	quick := flag.Bool("quick", false, "small parameter grid for a fast run")
	workers := flag.Int("workers", 0, "DP worker-pool size (0 = all CPUs)")
	tau := flag.Float64("tau", 0, "pruning threshold (0 = exact; > 0 emits certified brackets)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of the formatted table")
	flag.Parse()

	alphas := settlement.Table1Alphas
	fracs := settlement.Table1HonestFractions
	var horizons []int
	for _, k := range settlement.Table1Horizons {
		if k <= *kmax {
			horizons = append(horizons, k)
		}
	}
	if *quick {
		alphas = []float64{0.10, 0.30, 0.49}
		fracs = []float64{1.0, 0.5, 0.01}
		horizons = []int{100, 200}
	}
	if len(horizons) == 0 {
		horizons = []int{*kmax}
	}

	start := time.Now()
	tbl, err := settlement.ComputeTable1Pruned(alphas, fracs, horizons, *workers, *tau)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if *asJSON {
		out := jsonOutput{
			Alphas:    alphas,
			Fractions: fracs,
			Horizons:  horizons,
			Tau:       *tau,
			Workers:   *workers,
			ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		}
		if elapsed > 0 {
			out.CellsPerSec = float64(len(tbl.Cells)) / elapsed.Seconds()
		}
		for _, frac := range fracs {
			for _, k := range horizons {
				for _, alpha := range alphas {
					p, err := tbl.Lookup(frac, k, alpha)
					if err != nil {
						// Unreachable for a grid we just computed; a typed
						// miss here names the nearest cell we do hold.
						log.Fatal(err)
					}
					cell := jsonCell{HonestFraction: frac, Alpha: alpha, K: k, P: p}
					if tbl.Upper != nil {
						u := tbl.Upper[settlement.MakeKey(frac, k, alpha)]
						cell.Upper = &u
					}
					out.Cells = append(out.Cells, cell)
				}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println("Table 1: exact probabilities of k-settlement violations")
	fmt.Println("(rows: Pr[h]/(1-α) blocks by k; columns: α = Pr[A]; |x| → ∞ initial reach)")
	if *tau > 0 {
		fmt.Printf("(pruned at τ=%.3g: entries are certified lower ends; see -json for brackets)\n", *tau)
	}
	fmt.Println()
	fmt.Print(tbl.Format())
	fmt.Fprintf(os.Stderr, "\ncomputed %d cells in %v\n", len(tbl.Cells), elapsed.Round(time.Millisecond))
}
