// Command table1 regenerates Table 1 of the paper: exact probabilities of
// k-settlement violations for i.i.d. characteristic symbols, computed by
// the Section 6.6 dynamic program over the joint (reach, relative margin)
// chain with the |x| → ∞ initial law.
//
// Usage:
//
//	table1 [-kmax 500] [-quick] [-workers 0]
//
// -quick restricts to k ≤ 200 and three α columns for a fast smoke run.
// The independent (α, fraction) blocks are swept on a worker pool;
// -workers 0 (the default) uses every CPU and -workers 1 is the serial
// path. The emitted table is identical at any pool size.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"multihonest/internal/settlement"
)

func main() {
	log.SetFlags(0)
	kmax := flag.Int("kmax", 500, "largest settlement horizon k")
	quick := flag.Bool("quick", false, "small parameter grid for a fast run")
	workers := flag.Int("workers", 0, "DP worker-pool size (0 = all CPUs)")
	flag.Parse()

	alphas := settlement.Table1Alphas
	fracs := settlement.Table1HonestFractions
	var horizons []int
	for _, k := range settlement.Table1Horizons {
		if k <= *kmax {
			horizons = append(horizons, k)
		}
	}
	if *quick {
		alphas = []float64{0.10, 0.30, 0.49}
		fracs = []float64{1.0, 0.5, 0.01}
		horizons = []int{100, 200}
	}
	if len(horizons) == 0 {
		horizons = []int{*kmax}
	}

	start := time.Now()
	tbl, err := settlement.ComputeTable1(alphas, fracs, horizons, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table 1: exact probabilities of k-settlement violations")
	fmt.Println("(rows: Pr[h]/(1-α) blocks by k; columns: α = Pr[A]; |x| → ∞ initial reach)")
	fmt.Println()
	fmt.Print(tbl.Format())
	fmt.Fprintf(os.Stderr, "\ncomputed %d cells in %v\n", len(tbl.Cells), time.Since(start).Round(time.Millisecond))
}
