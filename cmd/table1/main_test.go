package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"reflect"
	"testing"
)

// TestMain lets the test binary impersonate the real command: when
// re-executed with TABLE1_RUN_MAIN=1 it runs main() on its own arguments,
// so the golden test drives the true flag-parsing and output path.
func TestMain(m *testing.M) {
	if os.Getenv("TABLE1_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) ([]byte, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TABLE1_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec failed: %v (stderr: %s)", err, stderr.Bytes())
	}
	return stdout.Bytes(), code
}

func decodeStrict(t *testing.T, data []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("output does not match the published schema: %v\noutput:\n%s", err, data)
	}
}

// TestJSONGolden pins the -json schema and values of the pruned -quick
// grid: strict field decode, the full cell grid in deterministic order,
// certified upper ends present because τ > 0, and exit status 0 — with
// the volatile timing and throughput fields normalized away.
func TestJSONGolden(t *testing.T) {
	out, code := runMain(t, "-quick", "-kmax", "200", "-tau", "1e-20", "-workers", "2", "-json")
	if code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out)
	}
	var got jsonOutput
	decodeStrict(t, out, &got)
	if want := len(got.Alphas) * len(got.Fractions) * len(got.Horizons); len(got.Cells) != want {
		t.Fatalf("cell grid incomplete: %d cells, want %d", len(got.Cells), want)
	}
	for i, c := range got.Cells {
		if c.Upper == nil {
			t.Fatalf("cell %d (frac=%v α=%v k=%d): τ > 0 run must carry the certified upper end", i, c.HonestFraction, c.Alpha, c.K)
		}
		if c.P > *c.Upper {
			t.Fatalf("cell %d: bracket inverted: p %v > upper %v", i, c.P, *c.Upper)
		}
	}
	got.ElapsedMS = 0
	got.CellsPerSec = 0
	checkGolden(t, "testdata/golden_quick.json", got)
}

// checkGolden compares the normalized document against the committed
// golden file. GOLDEN_UPDATE=1 rewrites the file instead.
func checkGolden(t *testing.T, path string, got jsonOutput) {
	t.Helper()
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var want jsonOutput
	decodeStrict(t, data, &want)
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("-json output drifted from %s\ngot:\n%s\nwant:\n%s", path, gotJSON, data)
	}
}
