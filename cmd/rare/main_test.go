package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"reflect"
	"testing"
)

// TestMain lets the test binary impersonate the real command: when
// re-executed with RARE_RUN_MAIN=1 it runs main() on its own arguments,
// so the golden tests drive the true flag-parsing, output, and
// exit-status paths.
func TestMain(m *testing.M) {
	if os.Getenv("RARE_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runMain(t *testing.T, args ...string) ([]byte, int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RARE_RUN_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec failed: %v (stderr: %s)", err, stderr.Bytes())
	}
	return stdout.Bytes(), code
}

func decodeStrict(t *testing.T, data []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("output does not match the published schema: %v\noutput:\n%s", err, data)
	}
}

// normalize zeroes the wall-clock fields so the golden comparison pins
// only deterministic content.
func normalize(out *jsonOutput) {
	out.ElapsedMS = 0
	if out.DPMS != nil {
		*out.DPMS = 0
	}
	for i := range out.Engines {
		out.Engines[i].ElapsedMS = 0
	}
}

// TestJSONGoldenAgree pins the -json schema and values of a moderate
// settlement point where both engines agree with the DP bracket: strict
// field decode, deterministic estimates (fixed seed, worker-invariant
// folds), per-engine and global agree flags, and exit status 0.
func TestJSONGoldenAgree(t *testing.T) {
	out, code := runMain(t,
		"-alpha", "0.30", "-ph", "0.35", "-k", "40", "-tau", "1e-30",
		"-n", "20000", "-rounds", "2", "-relerr", "0.5", "-ess", "50",
		"-split-particles", "128", "-split-replicates", "48",
		"-seed", "7", "-workers", "2", "-json")
	if code != 0 {
		t.Fatalf("exit code %d, want 0 (agree)\noutput:\n%s", code, out)
	}
	var got jsonOutput
	decodeStrict(t, out, &got)
	if !got.Agree {
		t.Fatalf("verdict disagree at an easy point\noutput:\n%s", out)
	}
	if len(got.Engines) != 2 {
		t.Fatalf("want tilt+split engine blocks, got %d", len(got.Engines))
	}
	if got.DPLower == nil || got.DPUpper == nil {
		t.Fatal("synchronous mode must emit the DP bracket")
	}
	for _, e := range got.Engines {
		if !e.Agree {
			t.Fatalf("engine %s disagrees\noutput:\n%s", e.Engine, out)
		}
		if e.ESS <= 0 {
			t.Fatalf("engine %s: ESS %v, want > 0", e.Engine, e.ESS)
		}
	}
	normalize(&got)
	checkGolden(t, "testdata/golden_agree.json", got)
}

// TestExitStatusDisagree pins the failure half of the exit-status
// contract: a starved tilted run (near-unit tilt, 100 samples, one round)
// at a deep point scores zero hits, so ESS = 0 forces DISAGREE and the
// process must exit 1 with agree=false in the document.
func TestExitStatusDisagree(t *testing.T) {
	out, code := runMain(t,
		"-alpha", "0.30", "-ph", "0.35", "-k", "150", "-tau", "1e-30",
		"-engines", "tilt", "-theta", "1e-6", "-n", "100", "-rounds", "1",
		"-seed", "7", "-workers", "1", "-json")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (disagree)\noutput:\n%s", code, out)
	}
	var got jsonOutput
	decodeStrict(t, out, &got)
	if got.Agree {
		t.Fatalf("document says agree but process exited 1\noutput:\n%s", out)
	}
	if len(got.Engines) != 1 || got.Engines[0].Engine != "tilt" {
		t.Fatalf("want exactly the tilt engine, got %+v", got.Engines)
	}
	if e := got.Engines[0]; e.Hits != 0 || e.ESS != 0 || e.Agree {
		t.Fatalf("starved run should score hits=0 ess=0 agree=false, got %+v", e)
	}
}

// checkGolden compares the normalized document against the committed
// golden file. GOLDEN_UPDATE=1 rewrites the file instead.
func checkGolden(t *testing.T, path string, got jsonOutput) {
	t.Helper()
	if os.Getenv("GOLDEN_UPDATE") == "1" {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	var want jsonOutput
	decodeStrict(t, data, &want)
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Fatalf("-json output drifted from %s\ngot:\n%s\nwant:\n%s", path, gotJSON, data)
	}
}
