// Command rare certifies deep-tail settlement probabilities: it runs the
// two rare-event engines of internal/rare — exponential tilting and
// multilevel splitting — against the lattice DP's rigorous
// [lower, lower+dropped] bracket for a settlement point or a Table 1
// cell, and prints each estimate ± its 95% interval next to the bracket
// with an agree/disagree verdict. For Δ-synchronous points no DP exists,
// so the two engines cross-check each other instead.
//
// Usage:
//
//	rare -alpha 0.15 -ph 0.45 -k 110            # settlement point vs DP bracket
//	rare -cell 0.9/0.30/400                     # Table 1 cell (frac/alpha/k)
//	rare -alpha 0.25 -ph 0.50 -k 40 -delta 2 -f 0.2 -s 8   # Δ-synchronous, engines cross-check
//	rare -alpha 0.15 -ph 0.45 -k 110 -json
//
// The exit status encodes the verdict: 0 when every engine's interval
// intersects the reference (and the tilted ESS is non-zero), 1 on any
// disagreement — which is what the CI smoke asserts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"multihonest/internal/charstring"
	"multihonest/internal/rare"
	"multihonest/internal/settlement"
)

// engineOut is one engine's JSON block.
type engineOut struct {
	Engine    string  `json:"engine"`
	P         float64 `json:"p"`
	SE        float64 `json:"se"`
	Lo        float64 `json:"ci95_lo"`
	Hi        float64 `json:"ci95_hi"`
	ESS       float64 `json:"ess"`
	Hits      int     `json:"hits"`
	N         int     `json:"n"`
	Theta     float64 `json:"theta,omitempty"`
	Rounds    int     `json:"rounds,omitempty"`
	Levels    int     `json:"levels,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Agree     bool    `json:"agree"`
}

// jsonOutput is the whole document.
type jsonOutput struct {
	Alpha     float64     `json:"alpha"`
	Ph        float64     `json:"ph"`
	K         int         `json:"k"`
	Delta     *int        `json:"delta,omitempty"`
	F         *float64    `json:"f,omitempty"`    // Δ mode: activity rate
	S         *int        `json:"s,omitempty"`    // Δ mode: target slot
	Tail      *int        `json:"tail,omitempty"` // Δ mode: reduced-slot tail
	Tau       float64     `json:"tau,omitempty"`
	DPLower   *float64    `json:"dp_lower,omitempty"`
	DPUpper   *float64    `json:"dp_upper,omitempty"`
	DPMS      *float64    `json:"dp_elapsed_ms,omitempty"`
	Engines   []engineOut `json:"engines"`
	Agree     bool        `json:"agree"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

func main() {
	log.SetFlags(0)
	alpha := flag.Float64("alpha", 0.15, "adversarial slot probability α = Pr[A]")
	ph := flag.Float64("ph", 0.45, "uniquely honest slot probability Pr[h]")
	k := flag.Int("k", 110, "settlement horizon (slots)")
	cell := flag.String("cell", "", "Table 1 cell as frac/alpha/k (e.g. 0.9/0.30/400); overrides -alpha/-ph/-k")
	delta := flag.Int("delta", -1, "if ≥ 0, estimate the Δ-synchronous unsettlement event instead (no DP reference)")
	f := flag.Float64("f", 0.2, "Δ mode: per-slot activity rate (Pr[any leader])")
	s := flag.Int("s", 8, "Δ mode: target slot")
	tail := flag.Int("tail", 100, "Δ mode: extra reduced-slot tail beyond the certificate window")
	tau := flag.Float64("tau", 1e-40, "DP pruning threshold for the reference bracket (0 = exact)")
	theta := flag.Float64("theta", 0, "tilt parameter (0 = automatic pilot selection)")
	n := flag.Int("n", 0, "tilted samples per round (0 = default)")
	rounds := flag.Int("rounds", 120, "maximum stopping-rule rounds")
	relerr := flag.Float64("relerr", 0.06, "target relative standard error")
	ess := flag.Float64("ess", 1000, "minimum effective sample size before stopping")
	particles := flag.Int("split-particles", 0, "splitting particles per stage (0 = default)")
	replicates := flag.Int("split-replicates", 0, "splitting replicates (0 = default)")
	engines := flag.String("engines", "tilt,split", "comma-separated engines to run")
	seed := flag.Int64("seed", 1, "deterministic job seed")
	workers := flag.Int("workers", 0, "worker-pool size (0 = all CPUs)")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON document")
	flag.Parse()

	if *cell != "" {
		frac, a, kk, err := parseCell(*cell)
		if err != nil {
			log.Fatal(err)
		}
		*alpha, *ph, *k = a, frac*(1-a), kk
	}
	start := time.Now()
	out := jsonOutput{Alpha: *alpha, Ph: *ph, K: *k}
	text := !*asJSON

	opt := rare.Options{
		Theta: *theta, N: *n, MaxRounds: *rounds, RelErr: *relerr, MinESS: *ess,
		Seed: *seed, Workers: *workers,
	}
	scfg := rare.SplitConfig{Particles: *particles, Replicates: *replicates, Seed: *seed, Workers: *workers}
	want := map[string]bool{}
	for _, e := range strings.Split(*engines, ",") {
		want[strings.TrimSpace(e)] = true
	}

	// Reference: the DP bracket (synchronous mode only).
	var refLo, refHi float64
	haveRef := false
	if *delta < 0 {
		p, err := charstring.ParamsFromAlpha(*alpha, *ph)
		if err != nil {
			log.Fatal(err)
		}
		dpStart := time.Now()
		lo, hi, err := settlement.New(p).ViolationBracket(*k, *tau)
		if err != nil {
			log.Fatal(err)
		}
		dpMS := float64(time.Since(dpStart).Microseconds()) / 1e3
		refLo, refHi, haveRef = lo, hi, true
		out.Tau, out.DPLower, out.DPUpper, out.DPMS = *tau, &lo, &hi, &dpMS
		if text {
			fmt.Printf("point: α=%.4f ph=%.4f k=%d (stationary settlement)\n", *alpha, *ph, *k)
			fmt.Printf("DP bracket (τ=%.2g): [%.6e, %.6e]  (%.1f ms)\n", *tau, lo, hi, dpMS)
		}
	} else {
		out.Delta, out.F, out.S, out.Tail = delta, f, s, tail
		if text {
			fmt.Printf("point: α=%.4f ph=%.4f k=%d Δ=%d f=%.3f s=%d (Δ-synchronous, no DP reference; engines cross-check)\n",
				*alpha, *ph, *k, *delta, *f, *s)
		}
	}

	run := func(name string, est func() (rare.Result, error)) {
		if !want[name] {
			return
		}
		t0 := time.Now()
		r, err := est()
		if err != nil {
			log.Fatal(err)
		}
		ms := float64(time.Since(t0).Microseconds()) / 1e3
		eo := engineOut{
			Engine: name, P: r.P, SE: r.SE, Lo: r.Lo, Hi: r.Hi, ESS: r.ESS,
			Hits: r.Hits, N: r.N, Theta: r.Theta, Rounds: r.Rounds, Levels: r.Levels,
			ElapsedMS: ms,
		}
		out.Engines = append(out.Engines, eo)
		if text {
			extra := fmt.Sprintf("levels=%d", r.Levels)
			if name == "tilt" {
				extra = fmt.Sprintf("θ=%.3f rounds=%d", r.Theta, r.Rounds)
			}
			fmt.Printf("%-5s: %v  %s  (%.2fs)\n", name, r.WeightedEstimate, extra, ms/1e3)
		}
	}

	if *delta < 0 {
		p, err := charstring.ParamsFromAlpha(*alpha, *ph)
		if err != nil {
			log.Fatal(err)
		}
		run("tilt", func() (rare.Result, error) { return rare.SettlementTilted(p, *k, opt) })
		run("split", func() (rare.Result, error) { return rare.SettlementSplit(p, *k, scfg) })
	} else {
		sp, err := charstring.NewSemiSyncParams(1-*f, *ph**f, (1-*alpha-*ph)**f, *alpha**f)
		if err != nil {
			log.Fatal(err)
		}
		run("tilt", func() (rare.Result, error) {
			return rare.DeltaUnsettledTilted(sp, *delta, *s, *k, *tail, opt)
		})
		run("split", func() (rare.Result, error) {
			return rare.DeltaUnsettledSplit(sp, *delta, *s, *k, *tail, scfg)
		})
	}
	if len(out.Engines) == 0 {
		log.Fatalf("no engines selected from %q", *engines)
	}

	// Verdict: every engine interval must intersect the reference — the
	// DP bracket when one exists, otherwise the other engines' intervals.
	agreeAll := true
	for i := range out.Engines {
		e := &out.Engines[i]
		if haveRef {
			e.Agree = e.Lo <= refHi && e.Hi >= refLo
		} else {
			e.Agree = true
			for j := range out.Engines {
				if j != i && (e.Lo > out.Engines[j].Hi || e.Hi < out.Engines[j].Lo) {
					e.Agree = false
				}
			}
		}
		if e.Engine == "tilt" && e.ESS <= 0 {
			e.Agree = false
		}
		agreeAll = agreeAll && e.Agree
		if text {
			verdict := "AGREE"
			if !e.Agree {
				verdict = "DISAGREE"
			}
			fmt.Printf("%-5s: %s\n", e.Engine, verdict)
		}
	}
	out.Agree = agreeAll
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	if text {
		fmt.Printf("verdict: %s (%.2fs)\n", map[bool]string{true: "AGREE", false: "DISAGREE"}[agreeAll], out.ElapsedMS/1e3)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
	}
	if !agreeAll {
		os.Exit(1)
	}
}

// parseCell parses a Table 1 cell coordinate frac/alpha/k.
func parseCell(cell string) (frac, alpha float64, k int, err error) {
	parts := strings.Split(cell, "/")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("rare: cell %q is not frac/alpha/k", cell)
	}
	if frac, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, 0, fmt.Errorf("rare: bad cell fraction %q: %v", parts[0], err)
	}
	if alpha, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, 0, fmt.Errorf("rare: bad cell alpha %q: %v", parts[1], err)
	}
	if k, err = strconv.Atoi(parts[2]); err != nil {
		return 0, 0, 0, fmt.Errorf("rare: bad cell horizon %q: %v", parts[2], err)
	}
	key := settlement.MakeKey(frac, k, alpha)
	return key.HonestFraction(), key.Alpha(), k, nil
}
