// Command loadgen drives a running settlement-oracle service (cmd/serve)
// with a zipfian-skewed query mix and reports achieved throughput and
// latency percentiles. The skewed key popularity is the oracle's intended
// regime: a small hot set of parameter points that should be answered from
// cached curves after one cold build each.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-duration 5s] [-concurrency 8]
//	        [-keys 64] [-skew 1.2] [-kmax 400] [-ops cell,curve,failure,depth,bracket]
//	        [-seed 1] [-json]
//
// Every worker draws keys from a shared universe of -keys parameter points
// (deterministic in -seed) through an independent zipf(-skew) stream, so
// a few points receive most of the traffic. The exit status is the smoke
// contract for CI: non-zero when no request completed or any request
// failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// point is one parameter point of the key universe.
type point struct {
	alpha, frac float64
}

// result aggregates one worker's traffic.
type result struct {
	latencies []float64 // seconds
	errors    int
	firstErr  error
}

// summary is the emitted report.
type summary struct {
	URL         string  `json:"url"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	Keys        int     `json:"keys"`
	Skew        float64 `json:"skew"`
	Ops         string  `json:"ops"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	baseURL := flag.String("url", "http://127.0.0.1:8080", "oracle base URL")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	keys := flag.Int("keys", 64, "size of the parameter-point universe")
	skew := flag.Float64("skew", 1.2, "zipf exponent s > 1 (larger = hotter hot set)")
	kmax := flag.Int("kmax", 400, "largest horizon / depth-search bound")
	ops := flag.String("ops", "cell,curve,failure,depth,bracket", "comma-separated op mix")
	seed := flag.Int64("seed", 1, "key-universe and traffic seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	if *concurrency < 1 || *keys < 1 || *skew <= 1 || *kmax < 2 {
		log.Fatalf("invalid flags: concurrency=%d keys=%d skew=%v kmax=%d", *concurrency, *keys, *skew, *kmax)
	}
	opList := strings.Split(*ops, ",")
	universe := makeUniverse(*keys, *seed)

	client := &http.Client{Timeout: 30 * time.Second}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		t2 := t.Clone()
		t2.MaxIdleConnsPerHost = *concurrency
		client.Transport = t2
	}

	deadline := time.Now().Add(*duration)
	results := make([]result, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, *skew, 1, uint64(len(universe)-1))
			res := &results[w]
			for time.Now().Before(deadline) {
				p := universe[zipf.Uint64()]
				op := opList[rng.Intn(len(opList))]
				url := queryURL(*baseURL, op, p, rng, *kmax)
				t0 := time.Now()
				err := get(client, url)
				res.latencies = append(res.latencies, time.Since(t0).Seconds())
				if err != nil {
					res.errors++
					if res.firstErr == nil {
						res.firstErr = fmt.Errorf("%s: %w", url, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	total, errs := 0, 0
	var firstErr error
	for i := range results {
		all = append(all, results[i].latencies...)
		total += len(results[i].latencies)
		errs += results[i].errors
		if firstErr == nil {
			firstErr = results[i].firstErr
		}
	}
	sort.Float64s(all)
	s := summary{
		URL:         *baseURL,
		DurationSec: elapsed.Seconds(),
		Concurrency: *concurrency,
		Keys:        *keys,
		Skew:        *skew,
		Ops:         *ops,
		Requests:    total,
		Errors:      errs,
		P50MS:       percentile(all, 0.50) * 1e3,
		P90MS:       percentile(all, 0.90) * 1e3,
		P99MS:       percentile(all, 0.99) * 1e3,
		MaxMS:       percentile(all, 1) * 1e3,
	}
	if elapsed > 0 {
		s.QPS = float64(total) / elapsed.Seconds()
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("%d requests in %.2fs (%d workers, %d keys, zipf %.2f): %.0f qps\n",
			s.Requests, s.DurationSec, s.Concurrency, s.Keys, s.Skew, s.QPS)
		fmt.Printf("latency p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms  errors %d\n",
			s.P50MS, s.P90MS, s.P99MS, s.MaxMS, s.Errors)
	}

	// Smoke contract: CI asserts non-zero throughput and an error-free run
	// through the exit status.
	if total == 0 {
		log.Fatal("no request completed")
	}
	if errs > 0 {
		log.Fatalf("%d/%d requests failed; first: %v", errs, total, firstErr)
	}
}

// makeUniverse draws the deterministic parameter-point universe: α and
// honest fraction on the oracle's basis-point grid, consistency-feasible.
func makeUniverse(n int, seed int64) []point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]point, n)
	for i := range pts {
		alpha := float64(100+rng.Intn(4801)) / 1e4 // [0.01, 0.49] in bp steps
		frac := float64(100+rng.Intn(9901)) / 1e4  // [0.01, 1.00]
		pts[i] = point{alpha: alpha, frac: frac}
	}
	return pts
}

// queryURL builds one request against the point. Horizons are drawn hot:
// most queries reuse the deepest horizon so cached curves serve them
// without extension, a spread of shallower ones reads the same curve.
func queryURL(base, op string, p point, rng *rand.Rand, kmax int) string {
	k := kmax
	if rng.Intn(4) == 0 {
		k = 1 + rng.Intn(kmax)
	}
	switch op {
	case "depth":
		// Targets must be reachable inside the search bound: the certified
		// failure bound decays at Ω(min(ǫ³, ǫ²ph)) per slot, so points near
		// α = 1/2 need k ~ 10⁶ for small targets. Pick per α band; past
		// 0.40 a depth search this size cannot certify anything useful, so
		// fall through to the point query instead.
		if p.alpha <= 0.40 {
			target := "1e-2"
			if p.alpha <= 0.30 {
				target = []string{"1e-4", "1e-6"}[rng.Intn(2)]
			}
			return fmt.Sprintf("%s/v1/depth?alpha=%g&frac=%g&target=%s&kmax=%d", base, p.alpha, p.frac, target, max(16*kmax, 3200))
		}
	case "curve":
		return fmt.Sprintf("%s/v1/curve?alpha=%g&frac=%g&k=%d", base, p.alpha, p.frac, k)
	case "failure":
		return fmt.Sprintf("%s/v1/failure?alpha=%g&frac=%g&k=%d", base, p.alpha, p.frac, k)
	case "bracket":
		return fmt.Sprintf("%s/v1/bracket?alpha=%g&frac=%g&k=%d&tau=1e-30", base, p.alpha, p.frac, k)
	}
	return fmt.Sprintf("%s/v1/cell?alpha=%g&frac=%g&k=%d", base, p.alpha, p.frac, k)
}

// get issues one request, draining the body so connections are reused.
// 422 (target_unreachable) is a valid semantic answer for depth queries
// at slow-decay parameter points, not a service failure.
func get(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// percentile reads the q-quantile from sorted samples (q = 1 is the max).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
