// Command loadgen drives a running settlement-oracle service (cmd/serve)
// with a zipfian-skewed query mix and reports achieved throughput and
// latency percentiles. The skewed key popularity is the oracle's intended
// regime: a small hot set of parameter points that should be answered from
// cached curves after one cold build each.
//
// Usage:
//
//	loadgen [-url http://127.0.0.1:8080] [-duration 5s] [-concurrency 8]
//	        [-keys 64] [-skew 1.2] [-kmax 400] [-ops cell,curve,failure,depth,bracket]
//	        [-seed 1] [-json] [-verify 0] [-scrape] [-traces]
//	        [-chaos -serve-bin ./serve] [-min-success 0.99] [-diagdir dir]
//
// With -verify F, a fraction F of completed requests is sampled and the
// answers recomputed on a local cold oracle; any float that is not
// bitwise identical fails the run. Wrong answers are never tolerated,
// at any error rate.
//
// With -scrape, loadgen reads the target's /metrics before and after the
// run and folds the server's own view of the window into the report:
// request count and p50/p99 from the service-side latency histogram
// (free of client/network overhead), cache hit/miss/coalesce counts, and
// the cluster's forward/hedge/retry/fallback counters. Every request
// carries a fresh X-Multihonest-Trace ID, so any failure reported here
// can be grepped in the server's structured logs by trace.
//
// With -traces, loadgen reads every target's flight recorder
// (/debug/traces) after the run, picks the slowest recorded request,
// and reports its full span tree — queue, coalesce_wait, build, extend,
// forward with per-attempt and hedge children, serialize — indented on
// stdout (and as .slowest_trace in the -json report). The latency tail
// the percentiles summarize becomes one concrete, named request.
//
// With -chaos, loadgen owns the topology: it spawns a 2-replica cluster
// from -serve-bin, drives load at the survivor, SIGKILLs the victim
// replica mid-run, restarts it on its snapshot, and waits for readiness
// — then asserts availability: the success rate must be at least
// -min-success (default 0.99) even though a replica died with queries
// sharded onto it. Replication must make the kill cost latency, not
// availability, and -verify makes it provably not cost correctness.
// -diagdir additionally arms each replica's anomaly watchdog with a
// per-replica directory under it; bundle directories written during the
// run (the survivor's breaker opening against the killed victim is the
// expected trigger) land in the report as .chaos.diag_bundles.
//
// The exit status is the smoke contract for CI: non-zero when no
// request completed, the success rate misses the bar (plain runs demand
// zero errors), any verified answer mismatches, or the victim never
// recovered.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"multihonest/internal/oracle"
	"multihonest/internal/settlement"
	"multihonest/internal/telemetry"
)

// logger is the structured log sink; chaos replicas inherit the same
// stderr, so their slog lines interleave with ours and share trace IDs.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil)).With("component", "loadgen")

// point is one parameter point of the key universe.
type point struct {
	alpha, frac float64
}

// querySpec is the machine-readable form of one request, kept alongside
// sampled responses so the verifier can recompute the answer locally.
type querySpec struct {
	op          string
	alpha, frac float64
	k           int
	target      float64
	kmax        int
	tau         float64
}

// sample is one completed request retained for offline verification.
type sample struct {
	spec   querySpec
	status int
	body   []byte
}

// result aggregates one worker's traffic.
type result struct {
	latencies []float64 // seconds
	errors    int
	firstErr  error
	samples   []sample
}

// chaosReport is the -chaos section of the summary. RestartToReadyMS is
// read from the restarted victim's serve_boot_to_ready_seconds gauge —
// the server's own boot-to-ready measurement, free of the harness's
// 20ms readiness-poll quantization; Source records which clock produced
// it ("gauge", or "client" when the victim's /metrics was unreachable).
type chaosReport struct {
	KilledAtSec      float64  `json:"killed_at_sec"`
	DownSec          float64  `json:"down_sec"`
	RestartToReadyMS float64  `json:"restart_to_ready_ms"`
	Source           string   `json:"restart_to_ready_source"`
	DiagBundles      []string `json:"diag_bundles,omitempty"`
}

// scrapeReport is the -scrape section of the summary: the delta of the
// server's own counters over the measurement window, plus windowed
// latency quantiles from the service-side histogram.
type scrapeReport struct {
	ServerRequests float64 `json:"server_requests"`
	ServerP50MS    float64 `json:"server_p50_ms"`
	ServerP99MS    float64 `json:"server_p99_ms"`
	CacheHits      float64 `json:"cache_hits"`
	CacheMisses    float64 `json:"cache_misses"`
	CoalescedWaits float64 `json:"coalesced_waits"`
	Forwards       float64 `json:"forwards"`
	ForwardRetries float64 `json:"forward_retries"`
	Hedges         float64 `json:"hedges"`
	LocalFallbacks float64 `json:"local_fallbacks"`
	OpenBreakers   float64 `json:"open_breakers"`
}

// summary is the emitted report.
type summary struct {
	URL         string        `json:"url"`
	DurationSec float64       `json:"duration_sec"`
	Concurrency int           `json:"concurrency"`
	Keys        int           `json:"keys"`
	Skew        float64       `json:"skew"`
	Ops         string        `json:"ops"`
	Requests    int           `json:"requests"`
	Errors      int           `json:"errors"`
	SuccessRate float64       `json:"success_rate"`
	Verified    int           `json:"verified"`
	Mismatches  int           `json:"verify_mismatches"`
	QPS         float64       `json:"qps"`
	P50MS       float64       `json:"p50_ms"`
	P90MS       float64       `json:"p90_ms"`
	P99MS       float64       `json:"p99_ms"`
	MaxMS       float64       `json:"max_ms"`
	Chaos       *chaosReport  `json:"chaos,omitempty"`
	Scrape      *scrapeReport `json:"scrape,omitempty"`

	// SlowestTrace is the -traces result: the slowest request the
	// targets' flight recorders retained, full span tree included.
	SlowestTrace *telemetry.TraceSnapshot `json:"slowest_trace,omitempty"`
}

// maxVerifySamples bounds the offline recompute pass.
const maxVerifySamples = 256

// teardown, when set, kills the -chaos topology. Every fatal exit must
// run it: an orphaned replica inherits our stderr and holds the pipe
// open, wedging whatever is capturing the run's output (CI, a shell
// pipeline) long after loadgen itself has died.
var teardown func()

// fatal logs one structured error line, tears the topology down, and
// exits non-zero.
func fatal(msg string, args ...any) {
	if teardown != nil {
		teardown()
	}
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	baseURL := flag.String("url", "http://127.0.0.1:8080", "oracle base URL (ignored with -chaos)")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	keys := flag.Int("keys", 64, "size of the parameter-point universe")
	skew := flag.Float64("skew", 1.2, "zipf exponent s > 1 (larger = hotter hot set)")
	kmax := flag.Int("kmax", 400, "largest horizon / depth-search bound")
	ops := flag.String("ops", "cell,curve,failure,depth,bracket", "comma-separated op mix")
	seed := flag.Int64("seed", 1, "key-universe and traffic seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	verify := flag.Float64("verify", 0, "fraction of answers recomputed locally and compared bitwise")
	scrape := flag.Bool("scrape", false, "scrape the target's /metrics around the run and fold server-side latency and cluster counters into the report")
	traces := flag.Bool("traces", false, "pull the targets' flight recorders after the run and report the slowest request's span tree")
	chaos := flag.Bool("chaos", false, "spawn a 2-replica cluster and kill/restart one mid-run")
	serveBin := flag.String("serve-bin", "", "path to the serve binary (-chaos only)")
	minSuccess := flag.Float64("min-success", 0.99, "required success rate under -chaos")
	diagdir := flag.String("diagdir", "", "arm each -chaos replica's anomaly watchdog under this directory")
	flag.Parse()

	if *concurrency < 1 || *keys < 1 || *skew <= 1 || *kmax < 2 {
		fatal("invalid flags", "concurrency", *concurrency, "keys", *keys, "skew", *skew, "kmax", *kmax)
	}
	if *verify < 0 || *verify > 1 {
		fatal("-verify outside [0,1]", "verify", *verify)
	}

	var chaosRep *chaosReport
	chaosc := make(chan *chaosReport, 1)
	target := *baseURL
	traceTargets := []string{target}
	if *chaos {
		if *serveBin == "" {
			fatal("-chaos requires -serve-bin")
		}
		cl := startCluster(*serveBin, *diagdir)
		teardown = cl.stop
		defer cl.stop()
		target = cl.survivorURL()
		traceTargets = cl.urls
		go func() {
			chaosc <- cl.killRestartCycle(*duration)
		}()
	}

	opList := strings.Split(*ops, ",")
	universe := makeUniverse(*keys, *seed)

	client := &http.Client{Timeout: 30 * time.Second}
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		t2 := t.Clone()
		t2.MaxIdleConnsPerHost = *concurrency
		client.Transport = t2
	}

	var before *telemetry.Scrape
	if *scrape {
		var err error
		if before, err = scrapeMetrics(client, target); err != nil {
			logger.Warn("pre-run /metrics scrape failed; -scrape disabled", "err", err)
			*scrape = false
		}
	}

	deadline := time.Now().Add(*duration)
	results := make([]result, *concurrency)
	var sampled atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, *skew, 1, uint64(len(universe)-1))
			res := &results[w]
			for time.Now().Before(deadline) {
				p := universe[zipf.Uint64()]
				op := opList[rng.Intn(len(opList))]
				url, spec := queryURL(target, op, p, rng, *kmax)
				trace := telemetry.NewTraceID()
				t0 := time.Now()
				status, body, err := get(client, url, trace)
				res.latencies = append(res.latencies, time.Since(t0).Seconds())
				if err != nil {
					res.errors++
					if res.firstErr == nil {
						res.firstErr = fmt.Errorf("%s (trace %s): %w", url, trace, err)
					}
					continue
				}
				if *verify > 0 && rng.Float64() < *verify && sampled.Add(1) <= maxVerifySamples {
					res.samples = append(res.samples, sample{spec: spec, status: status, body: body})
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var scrapeRep *scrapeReport
	if *scrape {
		after, err := scrapeMetrics(client, target)
		if err != nil {
			logger.Warn("post-run /metrics scrape failed", "err", err)
		} else {
			scrapeRep = foldScrapes(before, after)
		}
	}

	if *chaos {
		// The cycle finishes at the halfway mark plus the victim's ready
		// wait; a stuck restart fatals inside the goroutine (with its own
		// 15s bound), so this wait cannot hang.
		select {
		case chaosRep = <-chaosc:
		case <-time.After(30 * time.Second):
		}
		if chaosRep != nil && *diagdir != "" {
			chaosRep.DiagBundles = findBundles(*diagdir)
		}
	}

	var slowest *telemetry.TraceSnapshot
	if *traces {
		slowest = fetchSlowestTrace(client, traceTargets)
		if slowest == nil {
			logger.Warn("no recorded request trace on any target; is its flight recorder sampling?")
		}
	}

	var all []float64
	total, errs := 0, 0
	var firstErr error
	var samples []sample
	for i := range results {
		all = append(all, results[i].latencies...)
		total += len(results[i].latencies)
		errs += results[i].errors
		samples = append(samples, results[i].samples...)
		if firstErr == nil {
			firstErr = results[i].firstErr
		}
	}
	sort.Float64s(all)

	verified, mismatches, firstMismatch := verifySamples(samples)

	s := summary{
		URL:         target,
		DurationSec: elapsed.Seconds(),
		Concurrency: *concurrency,
		Keys:        *keys,
		Skew:        *skew,
		Ops:         *ops,
		Requests:    total,
		Errors:      errs,
		Verified:    verified,
		Mismatches:  mismatches,
		P50MS:       percentile(all, 0.50) * 1e3,
		P90MS:       percentile(all, 0.90) * 1e3,
		P99MS:       percentile(all, 0.99) * 1e3,
		MaxMS:       percentile(all, 1) * 1e3,
		Chaos:       chaosRep,
		Scrape:      scrapeRep,

		SlowestTrace: slowest,
	}
	if elapsed > 0 {
		s.QPS = float64(total) / elapsed.Seconds()
	}
	if total > 0 {
		s.SuccessRate = float64(total-errs) / float64(total)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fatal("encoding report", "err", err)
		}
	} else {
		fmt.Printf("%d requests in %.2fs (%d workers, %d keys, zipf %.2f): %.0f qps, success %.4f\n",
			s.Requests, s.DurationSec, s.Concurrency, s.Keys, s.Skew, s.QPS, s.SuccessRate)
		fmt.Printf("latency p50 %.3fms  p90 %.3fms  p99 %.3fms  max %.3fms  errors %d  verified %d\n",
			s.P50MS, s.P90MS, s.P99MS, s.MaxMS, s.Errors, s.Verified)
		if scrapeRep != nil {
			fmt.Printf("server: %.0f reqs, p50 %.3fms  p99 %.3fms;  cache hit/miss/coalesce %.0f/%.0f/%.0f\n",
				scrapeRep.ServerRequests, scrapeRep.ServerP50MS, scrapeRep.ServerP99MS,
				scrapeRep.CacheHits, scrapeRep.CacheMisses, scrapeRep.CoalescedWaits)
			fmt.Printf("cluster: forwards %.0f  hedges %.0f  retries %.0f  fallbacks %.0f  open breakers %.0f\n",
				scrapeRep.Forwards, scrapeRep.Hedges, scrapeRep.ForwardRetries,
				scrapeRep.LocalFallbacks, scrapeRep.OpenBreakers)
		}
		if chaosRep != nil {
			fmt.Printf("chaos: victim killed at %.2fs, down %.2fs, restart-to-ready %.1fms (%s)\n",
				chaosRep.KilledAtSec, chaosRep.DownSec, chaosRep.RestartToReadyMS, chaosRep.Source)
			for _, b := range chaosRep.DiagBundles {
				fmt.Printf("chaos: diagnostics bundle %s\n", b)
			}
		}
		if slowest != nil {
			printSpanTree(slowest)
		}
	}

	// Smoke contract. Correctness is absolute: one bitwise mismatch fails
	// the run no matter how available the cluster was.
	if total == 0 {
		fatal("no request completed")
	}
	if mismatches > 0 {
		fatal("verified answers differ from the local cold compute",
			"mismatches", mismatches, "verified", verified, "first", firstMismatch)
	}
	if *chaos {
		if chaosRep == nil {
			fatal("chaos cycle did not complete (victim never restarted)")
		}
		if s.SuccessRate < *minSuccess {
			fatal("success rate below -min-success",
				"success_rate", s.SuccessRate, "min_success", *minSuccess, "first_err", firstErr)
		}
	} else if errs > 0 {
		fatal("requests failed", "errors", errs, "total", total, "first_err", firstErr)
	}
}

// scrapeMetrics reads and parses the target's /metrics endpoint.
func scrapeMetrics(client *http.Client, base string) (*telemetry.Scrape, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	return telemetry.ParseText(io.LimitReader(resp.Body, 1<<22))
}

// foldScrapes reduces the before/after pair to the measurement window:
// counter deltas, and p50/p99 of the requests the window added to the
// service-side duration histogram. Breaker state is a gauge, so it is
// read from the closing scrape alone.
func foldScrapes(before, after *telemetry.Scrape) *scrapeReport {
	delta := func(name string) float64 {
		return after.SumFunc(name, nil) - before.SumFunc(name, nil)
	}
	window := telemetry.DeltaBuckets(
		before.Buckets("serve_http_request_duration_seconds", nil),
		after.Buckets("serve_http_request_duration_seconds", nil))
	rep := &scrapeReport{
		ServerRequests: delta("serve_http_request_duration_seconds_count"),
		ServerP50MS:    telemetry.QuantileFromBuckets(window, 0.50) * 1e3,
		ServerP99MS:    telemetry.QuantileFromBuckets(window, 0.99) * 1e3,
		CacheHits:      delta("oracle_cache_hits_total"),
		CacheMisses:    delta("oracle_cache_misses_total"),
		CoalescedWaits: delta("oracle_coalesced_waits_total"),
		Forwards:       delta("cluster_forwards_total"),
		ForwardRetries: delta("cluster_forward_retries_total"),
		Hedges:         delta("cluster_hedges_total"),
		LocalFallbacks: delta("cluster_local_fallbacks_total"),
	}
	for _, smp := range after.Samples {
		if smp.Name == "cluster_breaker_state" && smp.Value == 2 {
			rep.OpenBreakers++
		}
	}
	return rep
}

// fetchSlowestTrace reads every target's flight recorder and returns
// the slowest retained request trace (operational traces — snapshot
// saves, runner jobs — are skipped: the question -traces answers is
// "what did the worst *request* spend its time on").
func fetchSlowestTrace(client *http.Client, bases []string) *telemetry.TraceSnapshot {
	var slowest *telemetry.TraceSnapshot
	for _, base := range bases {
		resp, err := client.Get(base + "/debug/traces")
		if err != nil {
			logger.Warn("trace scrape failed", "target", base, "err", err)
			continue
		}
		var list telemetry.TraceList
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<24)).Decode(&list)
		resp.Body.Close()
		if err != nil {
			logger.Warn("trace scrape undecodable", "target", base, "err", err)
			continue
		}
		for i := range list.Traces {
			ts := &list.Traces[i]
			if len(ts.Spans) == 0 || ts.Spans[0].Name != "request" {
				continue
			}
			if slowest == nil || ts.DurNS > slowest.DurNS {
				slowest = ts
			}
		}
	}
	return slowest
}

// printSpanTree renders one recorded trace as an indented tree, children
// under parents in arena (start) order, with per-span attrs inline.
func printSpanTree(ts *telemetry.TraceSnapshot) {
	fmt.Printf("slowest recorded request: trace %s, %.3fms", ts.ID, float64(ts.DurNS)/1e6)
	if len(ts.Flags) > 0 {
		fmt.Printf(", flags %s", strings.Join(ts.Flags, ","))
	}
	fmt.Println()
	children := make(map[int][]int)
	for i, sp := range ts.Spans {
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	var walk func(idx, depth int)
	walk = func(idx, depth int) {
		sp := ts.Spans[idx]
		fmt.Printf("  %s%-14s %9.3fms", strings.Repeat("  ", depth), sp.Name, float64(sp.DurNS)/1e6)
		if sp.Value != 0 {
			fmt.Printf("  value=%d", sp.Value)
		}
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%s", k, sp.Attrs[k])
		}
		fmt.Println()
		for _, c := range children[idx] {
			walk(c, depth+1)
		}
	}
	for _, root := range children[-1] {
		walk(root, 0)
	}
	if ts.DroppedSpans > 0 {
		fmt.Printf("  (%d spans dropped: arena full)\n", ts.DroppedSpans)
	}
}

// findBundles lists the diagnostics bundle directories the -chaos
// replicas' watchdogs wrote (each holds a meta.json).
func findBundles(dir string) []string {
	metas, err := filepath.Glob(filepath.Join(dir, "*", "*", "meta.json"))
	if err != nil {
		return nil
	}
	bundles := make([]string, 0, len(metas))
	for _, m := range metas {
		bundles = append(bundles, filepath.Dir(m))
	}
	sort.Strings(bundles)
	return bundles
}

// makeUniverse draws the deterministic parameter-point universe: α and
// honest fraction on the oracle's basis-point grid, consistency-feasible.
func makeUniverse(n int, seed int64) []point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]point, n)
	for i := range pts {
		alpha := float64(100+rng.Intn(4801)) / 1e4 // [0.01, 0.49] in bp steps
		frac := float64(100+rng.Intn(9901)) / 1e4  // [0.01, 1.00]
		pts[i] = point{alpha: alpha, frac: frac}
	}
	return pts
}

// queryURL builds one request against the point. Horizons are drawn hot:
// most queries reuse the deepest horizon so cached curves serve them
// without extension, a spread of shallower ones reads the same curve.
func queryURL(base, op string, p point, rng *rand.Rand, kmax int) (string, querySpec) {
	k := kmax
	if rng.Intn(4) == 0 {
		k = 1 + rng.Intn(kmax)
	}
	spec := querySpec{op: op, alpha: p.alpha, frac: p.frac, k: k}
	switch op {
	case "depth":
		// Targets must be reachable inside the search bound: the certified
		// failure bound decays at Ω(min(ǫ³, ǫ²ph)) per slot, so points near
		// α = 1/2 need k ~ 10⁶ for small targets. Pick per α band; past
		// 0.40 a depth search this size cannot certify anything useful, so
		// fall through to the point query instead.
		if p.alpha <= 0.40 {
			target := 1e-2
			if p.alpha <= 0.30 {
				target = []float64{1e-4, 1e-6}[rng.Intn(2)]
			}
			spec.target, spec.kmax = target, max(16*kmax, 3200)
			return fmt.Sprintf("%s/v1/depth?alpha=%g&frac=%g&target=%g&kmax=%d",
				base, p.alpha, p.frac, target, spec.kmax), spec
		}
	case "curve":
		return fmt.Sprintf("%s/v1/curve?alpha=%g&frac=%g&k=%d", base, p.alpha, p.frac, k), spec
	case "failure":
		return fmt.Sprintf("%s/v1/failure?alpha=%g&frac=%g&k=%d", base, p.alpha, p.frac, k), spec
	case "bracket":
		spec.tau = 1e-30
		return fmt.Sprintf("%s/v1/bracket?alpha=%g&frac=%g&k=%d&tau=1e-30", base, p.alpha, p.frac, k), spec
	}
	spec.op = "cell"
	return fmt.Sprintf("%s/v1/cell?alpha=%g&frac=%g&k=%d", base, p.alpha, p.frac, k), spec
}

// get issues one request carrying the given trace ID, draining the body
// so connections are reused. 422 (target_unreachable) is a valid
// semantic answer for depth queries at slow-decay parameter points, not
// a service failure.
func get(client *http.Client, url, trace string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(telemetry.TraceHeader, trace)
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		return resp.StatusCode, nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return resp.StatusCode, body, nil
}

// verifySamples recomputes each sampled answer on a local cold oracle
// and compares bitwise. Go's JSON float64 round-trip is exact, so a
// served answer equals the local one iff every float matches to the bit
// — the cross-replica / snapshot / fallback identity contract.
func verifySamples(samples []sample) (verified, mismatches int, firstErr error) {
	if len(samples) == 0 {
		return 0, 0, nil
	}
	o := oracle.New(0)
	fail := func(s sample, format string, args ...any) {
		mismatches++
		if firstErr == nil {
			firstErr = fmt.Errorf("%s alpha=%g frac=%g k=%d: %s",
				s.spec.op, s.spec.alpha, s.spec.frac, s.spec.k, fmt.Sprintf(format, args...))
		}
	}
	for _, s := range samples {
		verified++
		ph := s.spec.frac * (1 - s.spec.alpha)
		switch s.spec.op {
		case "cell", "failure":
			var got struct {
				P float64 `json:"p"`
			}
			if err := json.Unmarshal(s.body, &got); err != nil {
				fail(s, "bad body: %v", err)
				continue
			}
			var want float64
			var err error
			if s.spec.op == "cell" {
				want, err = o.TableCell(s.spec.frac, s.spec.k, s.spec.alpha)
			} else {
				want, err = o.SettlementFailure(s.spec.alpha, ph, s.spec.k)
			}
			if err != nil {
				fail(s, "local compute: %v", err)
			} else if math.Float64bits(got.P) != math.Float64bits(want) {
				fail(s, "served %v, local %v", got.P, want)
			}
		case "curve":
			var got struct {
				Curve []float64 `json:"curve"`
			}
			if err := json.Unmarshal(s.body, &got); err != nil {
				fail(s, "bad body: %v", err)
				continue
			}
			want, err := o.SettlementCurve(s.spec.alpha, ph, s.spec.k)
			if err != nil {
				fail(s, "local compute: %v", err)
			} else if !slices.Equal(got.Curve, want) {
				fail(s, "curve differs (len %d vs %d)", len(got.Curve), len(want))
			}
		case "bracket":
			var got struct {
				Lower float64 `json:"lower"`
				Upper float64 `json:"upper"`
			}
			if err := json.Unmarshal(s.body, &got); err != nil {
				fail(s, "bad body: %v", err)
				continue
			}
			lo, hi, err := o.SettlementBracket(s.spec.alpha, ph, s.spec.k, s.spec.tau)
			if err != nil {
				fail(s, "local compute: %v", err)
			} else if math.Float64bits(got.Lower) != math.Float64bits(lo) || math.Float64bits(got.Upper) != math.Float64bits(hi) {
				fail(s, "served [%v,%v], local [%v,%v]", got.Lower, got.Upper, lo, hi)
			}
		case "depth":
			want, err := o.ConfirmationDepth(s.spec.alpha, ph, s.spec.target, s.spec.kmax)
			if s.status == http.StatusUnprocessableEntity {
				if !errors.Is(err, settlement.ErrTargetUnreachable) {
					fail(s, "served 422 but local compute gave depth %d, err %v", want, err)
				}
				continue
			}
			var got struct {
				Depth int `json:"depth"`
			}
			if jerr := json.Unmarshal(s.body, &got); jerr != nil {
				fail(s, "bad body: %v", jerr)
				continue
			}
			if err != nil {
				fail(s, "local compute: %v", err)
			} else if got.Depth != want {
				fail(s, "served depth %d, local %d", got.Depth, want)
			}
		}
	}
	return verified, mismatches, firstErr
}

// percentile reads the q-quantile from sorted samples (q = 1 is the max).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// cluster is the -chaos topology: two serve replicas sharing a peer
// map; replica 0 is the survivor taking the load, replica 1 the victim.
type cluster struct {
	bin     string
	dir     string
	diagdir string // arm replica watchdogs under here (empty = off)
	addrs   []string
	urls    []string
	procs   []*exec.Cmd
	done    []chan struct{} // closed when procs[i] is reaped
}

// startCluster reserves two ports, boots both replicas, and waits until
// both are ready.
func startCluster(bin, diagdir string) *cluster {
	cl := &cluster{bin: bin, diagdir: diagdir}
	var err error
	cl.dir, err = os.MkdirTemp("", "loadgen-chaos-*")
	if err != nil {
		fatal("chaos scratch dir", "err", err)
	}
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("reserving replica port", "err", err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cl.addrs = append(cl.addrs, addr)
		cl.urls = append(cl.urls, "http://"+addr)
	}
	cl.procs = make([]*exec.Cmd, 2)
	cl.done = make([]chan struct{}, 2)
	for i := 0; i < 2; i++ {
		cl.launch(i)
		cl.awaitReady(i, 15*time.Second)
	}
	logger.Info("chaos cluster up", "survivor", cl.urls[0], "victim", cl.urls[1])
	return cl
}

// launch (re)starts replica i. The victim gets a snapshot so its
// restart is a warm boot.
func (cl *cluster) launch(i int) {
	args := []string{
		"-addr", cl.addrs[i],
		"-peers", strings.Join(cl.urls, ","),
		"-self", cl.urls[i],
		"-snapshot", filepath.Join(cl.dir, fmt.Sprintf("replica%d.mhsnap", i)),
		"-checkpoint", "1s",
		// Chaos is a diagnostic harness: record every request, so the
		// -traces report always has the slowest one.
		"-trace-sample", "1",
	}
	if cl.diagdir != "" {
		args = append(args,
			"-diagdir", filepath.Join(cl.diagdir, fmt.Sprintf("replica%d", i)))
	}
	cmd := exec.Command(cl.bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatal("starting replica", "replica", i, "err", err)
	}
	cl.procs[i] = cmd
	done := make(chan struct{})
	cl.done[i] = done
	go func() { // reap; chaos kills are expected deaths
		_ = cmd.Wait()
		close(done)
	}()
}

func (cl *cluster) awaitReady(i int, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(cl.urls[i] + "/healthz/ready")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	fatal("replica never became ready", "replica", i, "url", cl.urls[i])
}

func (cl *cluster) survivorURL() string { return cl.urls[0] }

// killRestartCycle SIGKILLs the victim a third into the run and
// restarts it at the halfway mark, returning the measured report. The
// restart-to-ready figure is the victim's own serve_boot_to_ready_seconds
// gauge; the harness-side poll measurement is the fallback when the
// restarted replica's /metrics cannot be read.
func (cl *cluster) killRestartCycle(duration time.Duration) *chaosReport {
	start := time.Now()
	killAt := duration / 3
	downFor := duration / 6

	time.Sleep(killAt)
	if err := cl.procs[1].Process.Kill(); err != nil {
		fatal("killing victim", "err", err)
	}
	killed := time.Since(start)
	logger.Info("chaos: victim killed", "at_sec", killed.Seconds())

	time.Sleep(downFor)
	restart := time.Now()
	cl.launch(1)
	cl.awaitReady(1, 15*time.Second)
	readyMS := float64(time.Since(restart).Microseconds()) / 1e3
	source := "client"
	if sc, err := scrapeMetrics(http.DefaultClient, cl.urls[1]); err == nil {
		if v, ok := sc.Value("serve_boot_to_ready_seconds", nil); ok && v > 0 {
			readyMS, source = v*1e3, "gauge"
		}
	}
	logger.Info("chaos: victim restarted", "ready_ms", readyMS, "source", source)

	return &chaosReport{
		KilledAtSec:      killed.Seconds(),
		DownSec:          downFor.Seconds(),
		RestartToReadyMS: readyMS,
		Source:           source,
	}
}

// stop tears the topology down and removes its scratch directory. It
// waits for every replica to exit, escalating SIGTERM to SIGKILL, so
// loadgen never leaves a process behind holding the inherited stderr.
func (cl *cluster) stop() {
	for _, p := range cl.procs {
		if p != nil && p.Process != nil {
			_ = p.Process.Signal(syscall.SIGTERM)
		}
	}
	for i, p := range cl.procs {
		if p == nil || cl.done[i] == nil {
			continue
		}
		select {
		case <-cl.done[i]:
		case <-time.After(15 * time.Second): // past serve's drain budget
			_ = p.Process.Kill()
			<-cl.done[i]
		}
	}
	_ = os.RemoveAll(cl.dir)
}
