package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary impersonate the real command: when
// re-executed with SERVE_RUN_MAIN=1 it runs main() on its own arguments,
// so the lifecycle tests drive the true flag-parsing, signal handling,
// and snapshot path without building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("SERVE_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// lockedBuf is a bytes.Buffer safe for the scanner goroutine to append
// to while the test polls String (e.g. waiting for a trace ID to land).
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) WriteString(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.WriteString(s)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// replica is a re-exec'd serve process under test control.
type replica struct {
	cmd    *exec.Cmd
	addr   string
	stderr *lockedBuf
	done   chan error
}

var listenRE = regexp.MustCompile(`msg=listening addr=(\S+)`)

// startReplica launches the command and waits for its listen line. An
// ephemeral -addr is prepended unless the caller passes its own.
func startReplica(t *testing.T, args ...string) *replica {
	t.Helper()
	if !slices.Contains(args, "-addr") {
		args = append([]string{"-addr", "127.0.0.1:0"}, args...)
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SERVE_RUN_MAIN=1")
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	r := &replica{cmd: cmd, stderr: &lockedBuf{}, done: make(chan error, 1)}

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			r.stderr.WriteString(line + "\n")
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	go func() { r.done <- cmd.Wait() }()

	select {
	case r.addr = <-addrc:
	case err := <-r.done:
		t.Fatalf("serve exited before listening: %v\nstderr:\n%s", err, r.stderr)
	case <-time.After(10 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("serve never listened\nstderr:\n%s", r.stderr)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			<-r.done
		}
	})
	return r
}

func (r *replica) url(path string) string { return "http://" + r.addr + path }

// waitExit sends the signal and requires a clean (code 0) exit.
func (r *replica) waitExit(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := r.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-r.done:
		if err != nil {
			t.Fatalf("serve exited uncleanly: %v\nstderr:\n%s", err, r.stderr)
		}
	case <-time.After(15 * time.Second):
		_ = r.cmd.Process.Kill()
		t.Fatalf("serve did not exit after %v\nstderr:\n%s", sig, r.stderr)
	}
}

func waitReady(t *testing.T, r *replica) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(r.url("/healthz/ready"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica never became ready\nstderr:\n%s", r.stderr)
}

// heavyBatch builds a batch of distinct parameter points: enough cold DP
// builds that the request is still in flight when SIGTERM lands.
func heavyBatch(n, k int) []byte {
	type q struct {
		Op    string  `json:"op"`
		Alpha float64 `json:"alpha"`
		Frac  float64 `json:"frac"`
		K     int     `json:"k"`
	}
	var qs []q
	for i := 0; i < n; i++ {
		alpha := 0.05 + 0.40*float64(i)/float64(n) // distinct basis points
		qs = append(qs, q{Op: "cell", Alpha: alpha, Frac: 0.5, K: k})
	}
	body, _ := json.Marshal(struct {
		Queries []q `json:"queries"`
	}{qs})
	return body
}

// TestSigtermUnderLoad: a SIGTERM racing a large in-flight batch drains
// it to completion (200, every result present), flushes a final
// snapshot that includes the batch's curves, and exits 0. A restart on
// that snapshot boots warm.
func TestSigtermUnderLoad(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "oracle.mhsnap")
	// -checkpoint 1h: only the shutdown flush may write the snapshot, so
	// its existence proves the final-flush path.
	r := startReplica(t, "-snapshot", snap, "-checkpoint", "1h", "-cache", "4096", "-drain", "60s")
	waitReady(t, r)

	const nPoints = 150
	type result struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(r.url("/v1/batch"), "application/json",
			bytes.NewReader(heavyBatch(nPoints, 300)))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode, body: body, err: err}
	}()

	// Let the batch get going, then pull the trigger while it computes.
	time.Sleep(100 * time.Millisecond)
	if err := r.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight batch dropped during drain: %v\nstderr:\n%s", res.err, r.stderr)
	}
	if res.status != http.StatusOK {
		t.Fatalf("batch status %d during drain\nbody: %s", res.status, res.body)
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(res.body, &out); err != nil {
		t.Fatalf("batch response: %v", err)
	}
	if len(out.Results) != nPoints {
		t.Fatalf("drained batch returned %d/%d results", len(out.Results), nPoints)
	}

	select {
	case err := <-r.done:
		if err != nil {
			t.Fatalf("unclean exit: %v\nstderr:\n%s", err, r.stderr)
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("serve did not exit after drain\nstderr:\n%s", r.stderr)
	}
	for _, want := range []string{"draining", "final snapshot flushed", "clean shutdown"} {
		if !strings.Contains(r.stderr.String(), want) {
			t.Fatalf("shutdown log missing %q\nstderr:\n%s", want, r.stderr)
		}
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("final snapshot missing: %v", err)
	}

	// Restart on the snapshot: warm boot with the batch's curves.
	r2 := startReplica(t, "-snapshot", snap, "-checkpoint", "1h", "-cache", "4096")
	waitReady(t, r2)
	warmRE := regexp.MustCompile(`msg="warm boot" curves=(\d+) elapsed=(\S+)`)
	m := warmRE.FindStringSubmatch(r2.stderr.String())
	if m == nil {
		t.Fatalf("no warm boot line\nstderr:\n%s", r2.stderr)
	}
	var curves int
	fmt.Sscanf(m[1], "%d", &curves)
	if curves < nPoints {
		t.Fatalf("warm boot restored %d curves, want ≥%d (batch not in final flush)", curves, nPoints)
	}
	if d, err := time.ParseDuration(m[2]); err != nil || d >= time.Second {
		t.Fatalf("restart-to-hot took %s (err %v), want <1s", m[2], err)
	}
	r2.waitExit(t, syscall.SIGTERM)
}

// TestColdStartAndReadiness: no snapshot file is a clean cold start, and
// the probes split: live is green during drain, ready goes 503.
func TestColdStartAndReadiness(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "absent.mhsnap")
	r := startReplica(t, "-snapshot", snap, "-checkpoint", "1h")
	waitReady(t, r)
	if !strings.Contains(r.stderr.String(), "cold start") {
		t.Fatalf("missing cold-start log\nstderr:\n%s", r.stderr)
	}
	resp, err := http.Get(r.url("/healthz/live"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(r.url("/v1/curve?alpha=0.25&frac=0.5&k=50"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %v %v", resp, err)
	}
	if tr := resp.Header.Get("X-Multihonest-Trace"); len(tr) != 16 {
		t.Fatalf("query response trace header %q, want a 16-hex minted ID", tr)
	}
	resp.Body.Close()

	// The metrics endpoint must expose the query just made: a request
	// counter at the curve endpoint, the cold build's latency histogram,
	// and the readiness gauges.
	resp, err = http.Get(r.url("/metrics"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %v %v", resp, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`serve_http_requests_total{endpoint="/v1/curve",status="200"} 1`,
		"oracle_build_seconds_bucket",
		"oracle_cache_misses_total 1",
		"serve_http_request_duration_seconds_bucket",
		"serve_ready 1",
		"serve_boot_to_ready_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
	r.waitExit(t, syscall.SIGTERM)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("shutdown flush after cold start missing: %v", err)
	}
}

// TestFlightRecorderEndToEnd: a debug-logging replica with sampling
// wide open records every request; /debug/traces lists them, a single
// fetch returns the full span tree with the expected phases, a
// malformed trace header is rejected in favor of a minted ID, and the
// debug log carries per-span lines.
func TestFlightRecorderEndToEnd(t *testing.T) {
	r := startReplica(t, "-log-level", "debug", "-trace-sample", "1")
	waitReady(t, r)

	// A malformed header must not be adopted: 16 chars but uppercase hex.
	req, err := http.NewRequest("GET", r.url("/v1/curve?alpha=0.25&frac=0.5&k=80"), nil)
	if err != nil {
		t.Fatal(err)
	}
	const badID = "FEEDFACECAFEBEEF"
	req.Header.Set("X-Multihonest-Trace", badID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get("X-Multihonest-Trace")
	if minted == badID || len(minted) != 16 || strings.ToLower(minted) != minted {
		t.Fatalf("malformed trace header adopted: got %q back", minted)
	}

	// List: the recorded trace must be there under the minted ID.
	resp, err = http.Get(r.url("/debug/traces"))
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Kept   int64 `json:"kept"`
		Traces []struct {
			ID    string `json:"id"`
			DurNS int64  `json:"dur_ns"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	resp.Body.Close()
	if list.Kept == 0 || len(list.Traces) == 0 {
		t.Fatalf("recorder empty after a recorded request: %+v", list)
	}
	found := false
	for _, ts := range list.Traces {
		if ts.ID == minted {
			found = true
			if ts.DurNS <= 0 {
				t.Errorf("recorded trace %s has dur_ns %d, want > 0", minted, ts.DurNS)
			}
		}
	}
	if !found {
		t.Fatalf("minted trace %s not in /debug/traces list: %+v", minted, list.Traces)
	}

	// Single fetch: the span tree must hold the request root plus the
	// oracle's cold-build phases, all parented into one tree.
	resp, err = http.Get(r.url("/debug/traces?id=" + minted))
	if err != nil {
		t.Fatal(err)
	}
	var one struct {
		Spans []struct {
			Name   string `json:"name"`
			Parent int    `json:"parent"`
			DurNS  int64  `json:"dur_ns"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&one); err != nil {
		t.Fatalf("/debug/traces?id=: %v", err)
	}
	resp.Body.Close()
	names := make(map[string]bool)
	for _, sp := range one.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"request", "queue", "build", "serialize"} {
		if !names[want] {
			t.Fatalf("span tree missing %q: have %v", want, names)
		}
	}
	if one.Spans[0].Name != "request" || one.Spans[0].Parent != -1 {
		t.Fatalf("root span = %+v, want request with parent -1", one.Spans[0])
	}

	// An unknown ID is a 404, not an empty 200.
	resp, err = http.Get(r.url("/debug/traces?id=0000000000000000"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace returned %d, want 404", resp.StatusCode)
	}

	// /metrics must link the request's latency bucket to the trace by
	// exemplar, and -log-level debug must have produced span lines.
	resp, err = http.Get(r.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `# {trace_id="`+minted+`"}`) {
		t.Fatalf("/metrics has no exemplar for trace %s", minted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(r.stderr.String(), `msg=span`) ||
		!strings.Contains(r.stderr.String(), "name=build") {
		if time.Now().After(deadline) {
			t.Fatalf("debug span lines missing from -log-level debug output\nstderr:\n%s", r.stderr)
		}
		time.Sleep(20 * time.Millisecond)
	}
	r.waitExit(t, syscall.SIGTERM)
}

// TestReplicatedPair: two live replicas shard and forward; answers are
// byte-identical through either replica, and killing one leaves the
// other fully answering.
func TestReplicatedPair(t *testing.T) {
	// The peer set must be known before boot, so reserve two ports by
	// listening and releasing. (A rebinding race is possible but the
	// ports were just freed; the ready-wait absorbs the window.)
	urls := make([]string, 2)
	addrs := make([]string, 2)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}
	peerList := strings.Join(urls, ",")

	var rs []*replica
	for i := range urls {
		r := startReplica(t, "-addr", addrs[i], "-peers", peerList, "-self", urls[i])
		waitReady(t, r)
		rs = append(rs, r)
	}

	queries := []string{
		"/v1/curve?alpha=0.25&frac=0.5&k=60",
		"/v1/curve?alpha=0.3&frac=0.25&k=60",
		"/v1/cell?alpha=0.1&frac=1&k=60",
		"/v1/bracket?alpha=0.49&frac=0.01&k=60&tau=1e-30",
	}
	fetch := func(r *replica, q string) string {
		t.Helper()
		resp, err := http.Get(r.url(q))
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", q, resp.StatusCode, body)
		}
		return string(body)
	}
	want := make(map[string]string)
	for _, q := range queries {
		want[q] = fetch(rs[0], q)
		if got := fetch(rs[1], q); got != want[q] {
			t.Fatalf("%s: replicas disagree", q)
		}
	}

	// One trace ID, one forwarded query: hitting both replicas with the
	// same key means exactly one of them forwards to the other, so the ID
	// must appear in BOTH replicas' request logs.
	const traceID = "feedfacecafebeef"
	for _, r := range rs {
		req, err := http.NewRequest("GET", r.url(queries[0]), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Multihonest-Trace", traceID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if got := resp.Header.Get("X-Multihonest-Trace"); got != traceID {
			t.Fatalf("trace header %q not echoed, got %q", traceID, got)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(rs[0].stderr.String(), "trace="+traceID) &&
			strings.Contains(rs[1].stderr.String(), "trace="+traceID) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s did not reach both replicas' logs\nreplica0:\n%s\nreplica1:\n%s",
				traceID, rs[0].stderr, rs[1].stderr)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The forwarding replica's metrics must show a per-peer forward.
	var forwards int
	for _, r := range rs {
		resp, err := http.Get(r.url("/metrics"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "cluster_forwards_total{peer=") {
			forwards++
		}
	}
	if forwards == 0 {
		t.Fatal("no replica recorded a per-peer forward")
	}

	// SIGKILL replica 1 — no drain, no flush, the crash case. Replica 0
	// must keep answering everything, identically.
	if err := rs[1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-rs[1].done
	for _, q := range queries {
		if got := fetch(rs[0], q); got != want[q] {
			t.Fatalf("%s: answer changed after peer death", q)
		}
	}
	rs[0].waitExit(t, syscall.SIGTERM)
}
