// Command serve runs the settlement oracle as an HTTP JSON service: the
// repo's confirmation-depth, settlement-curve, bracket and Table-1 cell
// computations answered online from a concurrent cache of live lattice
// curves (internal/oracle). A hot parameter point costs one DP build ever;
// deeper queries pay only the incremental curve extension.
//
// Usage:
//
//	serve [-addr :8080] [-cache 1024] [-workers 0]
//
// Endpoints (see internal/oracle.Server):
//
//	GET  /v1/depth?alpha=0.25&frac=0.5&target=1e-6&kmax=4096
//	GET  /v1/curve?alpha=0.25&frac=0.5&k=200
//	GET  /v1/failure?alpha=0.25&ph=0.375&k=200
//	GET  /v1/cell?alpha=0.30&frac=0.25&k=400
//	GET  /v1/bracket?alpha=0.25&frac=0.5&k=200&tau=1e-30
//	POST /v1/batch              {"queries":[{"op":"cell",...},...]}
//	GET  /healthz
//	GET  /debug/vars            expvar: cache hits/misses, coalesced waits,
//	                            build/extend latency, resident curve bytes
//
// SIGINT/SIGTERM drain in-flight requests and exit 0 (clean shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multihonest/internal/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", oracle.DefaultMaxEntries, "curve cache capacity (parameter points)")
	workers := flag.Int("workers", 0, "batch executor pool size (0 = all CPUs)")
	flag.Parse()

	o := oracle.New(*cache)
	o.Publish("oracle")
	srv := &http.Server{
		Addr:              *addr,
		Handler:           oracle.NewServer(o, *workers).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("settlement oracle listening on %s (cache %d entries)", *addr, *cache)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("caught %v; draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	st := o.Stats()
	log.Printf("clean shutdown: %d entries, %d hits, %d misses, %d builds, %d extends",
		st.Entries, st.Hits, st.Misses, st.Builds, st.Extends)
}
