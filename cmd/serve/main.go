// Command serve runs the settlement oracle as an HTTP JSON service: the
// repo's confirmation-depth, settlement-curve, bracket and Table-1 cell
// computations answered online from a concurrent cache of live lattice
// curves (internal/oracle). A hot parameter point costs one DP build ever;
// deeper queries pay only the incremental curve extension.
//
// Usage:
//
//	serve [-addr :8080] [-cache 1024] [-workers 0]
//	      [-snapshot oracle.mhsnap] [-checkpoint 30s]
//	      [-peers http://a:8080,http://b:8080] [-self http://a:8080]
//	      [-drain 10s] [-pprof] [-reqlog=false]
//
// With -snapshot, the cache is persisted: a background checkpointer
// writes a checksummed snapshot atomically every -checkpoint interval
// (and once more at shutdown), and boot loads it back so a restart is
// warm — every previously built curve served from the first request,
// no DP rebuilds. A damaged snapshot is detected section-by-section,
// quarantined to <path>.corrupt, and only the damaged keys fall back to
// cold builds.
//
// With -peers/-self, replicas shard the key space by rendezvous hashing
// and forward non-owned queries with retries, hedging, and per-peer
// circuit breakers; any replica can still answer any query locally, so
// peer failure degrades latency, never availability or answers.
//
// Every request is traced: the edge middleware adopts an incoming
// X-Multihonest-Trace header (or mints a 16-hex ID), the ID rides
// cluster forwards so one query shows up under one ID on every replica
// it touches, and each request logs one structured line with its phase
// breakdown (queue, coalesce_wait, build, extend, forward, serialize).
// Metrics — cache hit/miss/coalesce counters, build/extend latency
// histograms, per-peer forward/hedge/breaker state, request duration by
// endpoint and status — are served in Prometheus text form on /metrics.
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// Endpoints (see internal/oracle.Server):
//
//	GET  /v1/depth?alpha=0.25&frac=0.5&target=1e-6&kmax=4096
//	GET  /v1/curve?alpha=0.25&frac=0.5&k=200
//	GET  /v1/failure?alpha=0.25&ph=0.375&k=200
//	GET  /v1/cell?alpha=0.30&frac=0.25&k=400
//	GET  /v1/bracket?alpha=0.25&frac=0.5&k=200&tau=1e-30
//	POST /v1/batch              {"queries":[{"op":"cell",...},...]}
//	GET  /healthz               liveness + cache gauge
//	GET  /healthz/live          bare liveness probe
//	GET  /healthz/ready         readiness (503 while booting/draining)
//	GET  /metrics               Prometheus text exposition
//	GET  /debug/vars            expvar: cache, snapshot, and cluster stats
//	GET  /debug/pprof/          profiling (only with -pprof)
//
// SIGINT/SIGTERM mark the replica not-ready, drain in-flight requests
// (batches included) for up to -drain, flush a final snapshot, and exit
// 0 (clean shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"multihonest/internal/faultfs"
	"multihonest/internal/oracle"
	"multihonest/internal/telemetry"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(logger); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger) error {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", oracle.DefaultMaxEntries, "curve cache capacity (parameter points)")
	workers := flag.Int("workers", 0, "batch executor pool size (0 = all CPUs)")
	snapshot := flag.String("snapshot", "", "snapshot file for warm restarts (empty = no persistence)")
	checkpoint := flag.Duration("checkpoint", 30*time.Second, "background snapshot interval")
	peers := flag.String("peers", "", "comma-separated replica base URLs, self included (empty = standalone)")
	self := flag.String("self", "", "this replica's base URL as written in -peers")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout for in-flight requests")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	reqlog := flag.Bool("reqlog", true, "log one structured line per request (probes excluded)")
	flag.Parse()

	bootStart := time.Now()
	reg := telemetry.New()
	readyG := reg.Gauge("serve_ready", "1 while the replica advertises ready, 0 while booting or draining.")
	bootG := reg.Gauge("serve_boot_to_ready_seconds", "Seconds from process start to first ready, warm boot included.")

	o := oracle.New(*cache)
	o.Publish("oracle")
	o.Instrument(reg)
	srv := oracle.NewServer(o, *workers)
	srv.SetReady(false) // not ready until the warm boot (if any) finishes

	// logf adapts printf-style internals (checkpointer, cluster breakers)
	// onto the structured logger.
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }

	var cp *oracle.Checkpointer
	if *snapshot != "" {
		boot := time.Now()
		stats, err := o.LoadSnapshotFile(faultfs.OS, *snapshot)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			logger.Info("no snapshot; cold start", "path", *snapshot)
		case err != nil:
			return fmt.Errorf("loading snapshot %s: %w", *snapshot, err)
		case stats.Damaged():
			logger.Warn("warm boot (degraded): damaged keys rebuild cold",
				"curves", stats.Entries,
				"elapsed", time.Since(boot).Round(time.Millisecond),
				"quarantined", stats.Quarantined,
				"quarantine_path", *snapshot+".corrupt")
		default:
			logger.Info("warm boot",
				"curves", stats.Entries,
				"elapsed", time.Since(boot).Round(time.Millisecond))
		}
		cp = oracle.NewCheckpointer(o, faultfs.OS, *snapshot, *checkpoint, logf)
		go cp.Run()
	}

	handler := srv.Handler()
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		cluster := oracle.NewCluster(srv, oracle.ClusterConfig{
			Self:  *self,
			Peers: list,
			Logf:  logf,
		})
		cluster.Publish("cluster")
		cluster.Instrument(reg)
		handler = cluster.Handler()
		logger.Info("replicated serving", "peers", len(list), "self", *self)
	}

	// Outer route table: the oracle (or cluster) routes plus the telemetry
	// endpoints, all wrapped in the tracing/metrics middleware.
	root := http.NewServeMux()
	root.Handle("/metrics", reg.Handler())
	if *pprofOn {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	root.Handle("/", handler)
	reqLogger := logger
	if !*reqlog {
		reqLogger = nil
	}
	h := telemetry.Middleware(root, telemetry.NewHTTPMetrics(reg, "serve"), reqLogger)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	srv.SetReady(true)
	readyG.Set(1)
	bootG.Set(time.Since(bootStart).Seconds())
	logger.Info("listening", "addr", ln.Addr().String(), "cache", *cache)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("caught signal; draining", "signal", sig.String())
	}

	// Stop advertising, finish what's in flight, then persist. Order
	// matters: the final snapshot must include curves built by the very
	// last drained batch.
	srv.SetReady(false)
	readyG.Set(0)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if cp != nil {
		if err := cp.Close(); err != nil {
			return fmt.Errorf("final snapshot flush: %w", err)
		}
		logger.Info("final snapshot flushed", "path", *snapshot)
	}
	st := o.Stats()
	logger.Info("clean shutdown",
		"entries", st.Entries, "hits", st.Hits, "misses", st.Misses,
		"builds", st.Builds, "extends", st.Extends)
	return nil
}
