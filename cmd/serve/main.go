// Command serve runs the settlement oracle as an HTTP JSON service: the
// repo's confirmation-depth, settlement-curve, bracket and Table-1 cell
// computations answered online from a concurrent cache of live lattice
// curves (internal/oracle). A hot parameter point costs one DP build ever;
// deeper queries pay only the incremental curve extension.
//
// Usage:
//
//	serve [-addr :8080] [-cache 1024] [-workers 0]
//	      [-snapshot oracle.mhsnap] [-checkpoint 30s]
//	      [-peers http://a:8080,http://b:8080] [-self http://a:8080]
//	      [-drain 10s]
//
// With -snapshot, the cache is persisted: a background checkpointer
// writes a checksummed snapshot atomically every -checkpoint interval
// (and once more at shutdown), and boot loads it back so a restart is
// warm — every previously built curve served from the first request,
// no DP rebuilds. A damaged snapshot is detected section-by-section,
// quarantined to <path>.corrupt, and only the damaged keys fall back to
// cold builds.
//
// With -peers/-self, replicas shard the key space by rendezvous hashing
// and forward non-owned queries with retries, hedging, and per-peer
// circuit breakers; any replica can still answer any query locally, so
// peer failure degrades latency, never availability or answers.
//
// Endpoints (see internal/oracle.Server):
//
//	GET  /v1/depth?alpha=0.25&frac=0.5&target=1e-6&kmax=4096
//	GET  /v1/curve?alpha=0.25&frac=0.5&k=200
//	GET  /v1/failure?alpha=0.25&ph=0.375&k=200
//	GET  /v1/cell?alpha=0.30&frac=0.25&k=400
//	GET  /v1/bracket?alpha=0.25&frac=0.5&k=200&tau=1e-30
//	POST /v1/batch              {"queries":[{"op":"cell",...},...]}
//	GET  /healthz               liveness + cache gauge
//	GET  /healthz/live          bare liveness probe
//	GET  /healthz/ready         readiness (503 while booting/draining)
//	GET  /debug/vars            expvar: cache, snapshot, and cluster stats
//
// SIGINT/SIGTERM mark the replica not-ready, drain in-flight requests
// (batches included) for up to -drain, flush a final snapshot, and exit
// 0 (clean shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"multihonest/internal/faultfs"
	"multihonest/internal/oracle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", oracle.DefaultMaxEntries, "curve cache capacity (parameter points)")
	workers := flag.Int("workers", 0, "batch executor pool size (0 = all CPUs)")
	snapshot := flag.String("snapshot", "", "snapshot file for warm restarts (empty = no persistence)")
	checkpoint := flag.Duration("checkpoint", 30*time.Second, "background snapshot interval")
	peers := flag.String("peers", "", "comma-separated replica base URLs, self included (empty = standalone)")
	self := flag.String("self", "", "this replica's base URL as written in -peers")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout for in-flight requests")
	flag.Parse()

	o := oracle.New(*cache)
	o.Publish("oracle")
	srv := oracle.NewServer(o, *workers)
	srv.SetReady(false) // not ready until the warm boot (if any) finishes

	var cp *oracle.Checkpointer
	if *snapshot != "" {
		boot := time.Now()
		stats, err := o.LoadSnapshotFile(faultfs.OS, *snapshot)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("no snapshot at %s; cold start", *snapshot)
		case err != nil:
			return fmt.Errorf("loading snapshot %s: %w", *snapshot, err)
		case stats.Damaged():
			log.Printf("warm boot (degraded): %d curves restored in %s; %d sections quarantined to %s.corrupt, damaged keys rebuild cold",
				stats.Entries, time.Since(boot).Round(time.Millisecond), stats.Quarantined, *snapshot)
		default:
			log.Printf("warm boot: %d curves restored in %s", stats.Entries, time.Since(boot).Round(time.Millisecond))
		}
		cp = oracle.NewCheckpointer(o, faultfs.OS, *snapshot, *checkpoint, log.Printf)
		go cp.Run()
	}

	handler := srv.Handler()
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		cluster := oracle.NewCluster(srv, oracle.ClusterConfig{
			Self:  *self,
			Peers: list,
			Logf:  log.Printf,
		})
		cluster.Publish("cluster")
		handler = cluster.Handler()
		log.Printf("replicated serving: %d peers, self=%s", len(list), *self)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	srv.SetReady(true)
	log.Printf("settlement oracle listening on %s (cache %d entries)", ln.Addr(), *cache)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("caught %v; draining", sig)
	}

	// Stop advertising, finish what's in flight, then persist. Order
	// matters: the final snapshot must include curves built by the very
	// last drained batch.
	srv.SetReady(false)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if cp != nil {
		if err := cp.Close(); err != nil {
			return fmt.Errorf("final snapshot flush: %w", err)
		}
		log.Printf("final snapshot flushed to %s", *snapshot)
	}
	st := o.Stats()
	log.Printf("clean shutdown: %d entries, %d hits, %d misses, %d builds, %d extends",
		st.Entries, st.Hits, st.Misses, st.Builds, st.Extends)
	return nil
}
