// Command serve runs the settlement oracle as an HTTP JSON service: the
// repo's confirmation-depth, settlement-curve, bracket and Table-1 cell
// computations answered online from a concurrent cache of live lattice
// curves (internal/oracle). A hot parameter point costs one DP build ever;
// deeper queries pay only the incremental curve extension.
//
// Usage:
//
//	serve [-addr :8080] [-cache 1024] [-workers 0]
//	      [-snapshot oracle.mhsnap] [-checkpoint 30s]
//	      [-peers http://a:8080,http://b:8080] [-self http://a:8080]
//	      [-drain 10s] [-pprof] [-reqlog=false] [-log-level info]
//	      [-trace-buf 256] [-trace-threshold 100ms] [-trace-sample 0.05]
//	      [-diagdir diagnostics/]
//
// With -snapshot, the cache is persisted: a background checkpointer
// writes a checksummed snapshot atomically every -checkpoint interval
// (and once more at shutdown), and boot loads it back so a restart is
// warm — every previously built curve served from the first request,
// no DP rebuilds. A damaged snapshot is detected section-by-section,
// quarantined to <path>.corrupt, and only the damaged keys fall back to
// cold builds.
//
// With -peers/-self, replicas shard the key space by rendezvous hashing
// and forward non-owned queries with retries, hedging, and per-peer
// circuit breakers; any replica can still answer any query locally, so
// peer failure degrades latency, never availability or answers.
//
// Every request is traced: the edge middleware adopts a well-formed
// incoming X-Multihonest-Trace header (16 lowercase hex; anything else
// is rejected and a fresh ID minted), the ID rides cluster forwards so
// one query shows up under one ID on every replica it touches, and each
// request builds a span tree — queue, coalesce_wait, build, extend,
// forward (with per-attempt and hedge children), serialize — plus one
// structured log line with the phase breakdown. Finished traces feed a
// flight recorder (-trace-buf) with tail sampling: errors, hedged and
// breaker-affected requests, and anything over -trace-threshold are
// kept unconditionally, the boring rest with probability -trace-sample.
// Browse it at /debug/traces (list) and /debug/traces?id=<traceID>
// (full span tree). Latency histogram buckets on /metrics carry
// exemplar trace IDs linking straight back to recorded traces.
//
// With -diagdir, a watchdog self-scrapes /metrics and, on anomaly —
// windowed request p99 over budget, a circuit breaker opening, or a
// readiness flap — writes a diagnostics bundle (recent traces, metrics
// snapshot, goroutine and heap profiles) into the directory.
//
// Metrics — cache hit/miss/coalesce counters, build/extend latency
// histograms, per-peer forward/hedge/breaker state, request duration by
// endpoint and status — are served in Prometheus text form on /metrics.
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
// -log-level debug additionally logs every span of every recorded
// request.
//
// Endpoints (see internal/oracle.Server):
//
//	GET  /v1/depth?alpha=0.25&frac=0.5&target=1e-6&kmax=4096
//	GET  /v1/curve?alpha=0.25&frac=0.5&k=200
//	GET  /v1/failure?alpha=0.25&ph=0.375&k=200
//	GET  /v1/cell?alpha=0.30&frac=0.25&k=400
//	GET  /v1/bracket?alpha=0.25&frac=0.5&k=200&tau=1e-30
//	POST /v1/batch              {"queries":[{"op":"cell",...},...]}
//	GET  /healthz               liveness + cache gauge
//	GET  /healthz/live          bare liveness probe
//	GET  /healthz/ready         readiness (503 while booting/draining)
//	GET  /metrics               Prometheus text exposition (with exemplars)
//	GET  /debug/vars            expvar: cache, snapshot, and cluster stats
//	GET  /debug/traces          flight recorder: recent trace summaries
//	GET  /debug/traces?id=...   one recorded trace's full span tree
//	GET  /debug/pprof/          profiling (only with -pprof)
//
// SIGINT/SIGTERM mark the replica not-ready, drain in-flight requests
// (batches included) for up to -drain, flush a final snapshot, and exit
// 0 (clean shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"multihonest/internal/faultfs"
	"multihonest/internal/oracle"
	"multihonest/internal/telemetry"
)

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(logger); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
}

func run(logger *slog.Logger) error {
	addr := flag.String("addr", ":8080", "listen address")
	cache := flag.Int("cache", oracle.DefaultMaxEntries, "curve cache capacity (parameter points)")
	workers := flag.Int("workers", 0, "batch executor pool size (0 = all CPUs)")
	snapshot := flag.String("snapshot", "", "snapshot file for warm restarts (empty = no persistence)")
	checkpoint := flag.Duration("checkpoint", 30*time.Second, "background snapshot interval")
	peers := flag.String("peers", "", "comma-separated replica base URLs, self included (empty = standalone)")
	self := flag.String("self", "", "this replica's base URL as written in -peers")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout for in-flight requests")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	reqlog := flag.Bool("reqlog", true, "log one structured line per request (probes excluded)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error (debug logs every span)")
	traceBuf := flag.Int("trace-buf", 256, "flight recorder capacity in traces")
	traceThreshold := flag.Duration("trace-threshold", 100*time.Millisecond, "record every request at least this slow (negative = flags only)")
	traceSample := flag.Float64("trace-sample", 0.05, "keep probability for unremarkable traces (negative = keep none)")
	diagdir := flag.String("diagdir", "", "write anomaly diagnostics bundles into this directory (empty = off)")
	flag.Parse()

	var lvl slog.Level
	switch strings.ToLower(*logLevel) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", *logLevel)
	}
	logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	bootStart := time.Now()
	reg := telemetry.New()
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		Capacity:         *traceBuf,
		LatencyThreshold: *traceThreshold,
		SampleRate:       *traceSample,
	})
	readyG := reg.Gauge("serve_ready", "1 while the replica advertises ready, 0 while booting or draining.")
	bootG := reg.Gauge("serve_boot_to_ready_seconds", "Seconds from process start to first ready, warm boot included.")

	o := oracle.New(*cache)
	o.Publish("oracle")
	o.Instrument(reg)
	srv := oracle.NewServer(o, *workers)
	srv.SetReady(false) // not ready until the warm boot (if any) finishes

	// logf adapts printf-style internals (checkpointer, cluster breakers)
	// onto the structured logger.
	logf := func(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }

	var cp *oracle.Checkpointer
	if *snapshot != "" {
		boot := time.Now()
		stats, err := o.LoadSnapshotFile(faultfs.OS, *snapshot)
		// The warm boot is the first operational trace in the flight
		// recorder: how long the load took and how many curves it restored.
		bt := telemetry.NewTrace("")
		bsp := bt.StartSpan("snapshot_load", telemetry.SpanRef{})
		bsp.SetAttr("path", *snapshot)
		bsp.SetValue(int64(stats.Entries))
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			bt.SetFlag(telemetry.FlagError)
		}
		bsp.End()
		bt.SetFlag(telemetry.FlagForce)
		bt.Finish()
		rec.Record(bt)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			logger.Info("no snapshot; cold start", "path", *snapshot)
		case err != nil:
			return fmt.Errorf("loading snapshot %s: %w", *snapshot, err)
		case stats.Damaged():
			logger.Warn("warm boot (degraded): damaged keys rebuild cold",
				"curves", stats.Entries,
				"elapsed", time.Since(boot).Round(time.Millisecond),
				"quarantined", stats.Quarantined,
				"quarantine_path", *snapshot+".corrupt")
		default:
			logger.Info("warm boot",
				"curves", stats.Entries,
				"elapsed", time.Since(boot).Round(time.Millisecond))
		}
		cp = oracle.NewCheckpointer(o, faultfs.OS, *snapshot, *checkpoint, logf)
		cp.SetRecorder(rec)
		go cp.Run()
	}

	handler := srv.Handler()
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		cluster := oracle.NewCluster(srv, oracle.ClusterConfig{
			Self:  *self,
			Peers: list,
			Logf:  logf,
		})
		cluster.Publish("cluster")
		cluster.Instrument(reg)
		handler = cluster.Handler()
		logger.Info("replicated serving", "peers", len(list), "self", *self)
	}

	// Outer route table: the oracle (or cluster) routes plus the telemetry
	// endpoints, all wrapped in the tracing/metrics middleware.
	root := http.NewServeMux()
	root.Handle("/metrics", reg.Handler())
	root.Handle("/debug/traces", rec.Handler())
	if *pprofOn {
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	root.Handle("/", handler)
	reqLogger := logger
	if !*reqlog {
		reqLogger = nil
	}
	h := telemetry.MiddlewareWith(root, telemetry.MiddlewareConfig{
		Metrics:    telemetry.NewHTTPMetrics(reg, "serve"),
		Logger:     reqLogger,
		Recorder:   rec,
		DebugSpans: lvl <= slog.LevelDebug,
	})

	var wd *telemetry.Watchdog
	if *diagdir != "" {
		if err := os.MkdirAll(*diagdir, 0o755); err != nil {
			return fmt.Errorf("creating -diagdir: %w", err)
		}
		wd = telemetry.NewWatchdog(reg, rec, telemetry.WatchdogConfig{Dir: *diagdir, Logf: logf})
		go wd.Run()
		logger.Info("watchdog armed", "diagdir", *diagdir)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}

	// Install the signal handler before advertising ready: a supervisor
	// that probes ready and immediately signals must hit graceful drain,
	// never the default disposition.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	srv.SetReady(true)
	readyG.Set(1)
	bootG.Set(time.Since(bootStart).Seconds())
	logger.Info("listening", "addr", ln.Addr().String(), "cache", *cache)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("caught signal; draining", "signal", sig.String())
	}

	// Stop advertising, finish what's in flight, then persist. Order
	// matters: the watchdog must stop before the readiness gauge drops
	// (a clean shutdown is not a ready flap), and the final snapshot
	// must include curves built by the very last drained batch.
	if wd != nil {
		wd.Close()
	}
	srv.SetReady(false)
	readyG.Set(0)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if cp != nil {
		if err := cp.Close(); err != nil {
			return fmt.Errorf("final snapshot flush: %w", err)
		}
		logger.Info("final snapshot flushed", "path", *snapshot)
	}
	st := o.Stats()
	logger.Info("clean shutdown",
		"entries", st.Entries, "hits", st.Hits, "misses", st.Misses,
		"builds", st.Builds, "extends", st.Extends)
	return nil
}
